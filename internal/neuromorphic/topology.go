package neuromorphic

import (
	"fmt"

	"burstsnn/internal/snn"
)

// LayerTopo abstracts one layer of the mapped network: a population of
// neurons and the fan-out of the *previous* layer into it is recorded on
// the previous entry. Fan-out is computed from geometry (kernel
// footprints, pooling windows, dense all-to-all), not from weights —
// routing cost depends on where spikes go, not how strongly.
type LayerTopo struct {
	Name    string
	Neurons int
	// FanOut returns the next-layer neuron indices that neuron i
	// projects to (nil for the final layer). The callback avoids
	// materializing dense all-to-all adjacency.
	FanOut func(i int) []int
	// NextNeurons is the size of the layer FanOut points into.
	NextNeurons int
}

// Topology is the whole network as a layered graph, input first, readout
// last. Max-pool gates are modeled as relay populations: they occupy core
// slots and forward spikes, which is how they are realized on
// neurosynaptic hardware.
type Topology struct {
	Layers []LayerTopo
}

// TotalNeurons sums every layer's population.
func (t *Topology) TotalNeurons() int {
	total := 0
	for _, l := range t.Layers {
		total += l.Neurons
	}
	return total
}

// LayerOffsets returns each layer's starting global neuron id.
func (t *Topology) LayerOffsets() []int {
	offs := make([]int, len(t.Layers))
	run := 0
	for i, l := range t.Layers {
		offs[i] = run
		run += l.Neurons
	}
	return offs
}

// ExtractTopology derives the layered connectivity graph of a converted
// spiking network, including the encoder (layer 0) and the readout (last
// layer, no fan-out).
func ExtractTopology(net *snn.Network) (*Topology, error) {
	topo := &Topology{}
	topo.Layers = append(topo.Layers, LayerTopo{Name: "input", Neurons: net.Encoder.Size()})
	last := func() *LayerTopo { return &topo.Layers[len(topo.Layers)-1] }

	for i, layer := range net.Layers {
		switch l := layer.(type) {
		case *snn.SpikingDense:
			last().FanOut = allToAll(l.Out)
			last().NextNeurons = l.Out
			topo.Layers = append(topo.Layers, LayerTopo{Name: "dense", Neurons: l.Out})
		case *snn.SpikingConv:
			n := l.Geom.OutC * l.Geom.OutH() * l.Geom.OutW()
			last().FanOut = convFanOut(l.Geom)
			last().NextNeurons = n
			topo.Layers = append(topo.Layers, LayerTopo{Name: "conv", Neurons: n})
		case *snn.SpikingAvgPool:
			n := l.C * (l.H / l.Window) * (l.W / l.Window)
			last().FanOut = poolFanOut(l.C, l.H, l.W, l.Window)
			last().NextNeurons = n
			topo.Layers = append(topo.Layers, LayerTopo{Name: "avgpool", Neurons: n})
		case *snn.SpikingMaxPool:
			n := l.C * (l.H / l.Window) * (l.W / l.Window)
			last().FanOut = poolFanOut(l.C, l.H, l.W, l.Window)
			last().NextNeurons = n
			topo.Layers = append(topo.Layers, LayerTopo{Name: "maxpool", Neurons: n})
		default:
			return nil, fmt.Errorf("neuromorphic: unsupported layer %d (%s)", i, layer.Name())
		}
	}

	out := net.Output
	last().FanOut = allToAll(out.Out)
	last().NextNeurons = out.Out
	topo.Layers = append(topo.Layers, LayerTopo{Name: "readout", Neurons: out.Out})
	return topo, nil
}

// allToAll returns a fan-out projecting to every neuron of a layer of
// size n.
func allToAll(n int) func(int) []int {
	targets := make([]int, n)
	for i := range targets {
		targets[i] = i
	}
	return func(int) []int { return targets }
}

// convFanOut maps an input neuron of a convolution to the output
// positions whose receptive fields cover it (all output channels).
func convFanOut(g snn.ConvGeom) func(int) []int {
	outH, outW := g.OutH(), g.OutW()
	outHW := outH * outW
	return func(i int) []int {
		rem := i % (g.InH * g.InW)
		iy, ix := rem/g.InW, rem%g.InW
		var targets []int
		for kh := 0; kh < g.K; kh++ {
			oyNum := iy + g.Pad - kh
			if oyNum < 0 || oyNum%g.Stride != 0 {
				continue
			}
			oy := oyNum / g.Stride
			if oy >= outH {
				continue
			}
			for kw := 0; kw < g.K; kw++ {
				oxNum := ix + g.Pad - kw
				if oxNum < 0 || oxNum%g.Stride != 0 {
					continue
				}
				ox := oxNum / g.Stride
				if ox >= outW {
					continue
				}
				base := oy*outW + ox
				for oc := 0; oc < g.OutC; oc++ {
					targets = append(targets, oc*outHW+base)
				}
			}
		}
		return targets
	}
}

// poolFanOut maps an input neuron to its single pooling window output.
func poolFanOut(c, h, w, window int) func(int) []int {
	outH, outW := h/window, w/window
	return func(i int) []int {
		ch := i / (h * w)
		rem := i % (h * w)
		iy, ix := rem/w, rem%w
		return []int{(ch*outH+iy/window)*outW + ix/window}
	}
}
