package stdp

import (
	"testing"

	"burstsnn/internal/dataset"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(784, 20).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Inputs: 0, Neurons: 5},
		func() Config { c := DefaultConfig(4, 4); c.MemDecay = 1.5; return c }(),
		func() Config { c := DefaultConfig(4, 4); c.WMax = 0; return c }(),
		func() Config { c := DefaultConfig(4, 4); c.MaxRate = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWeightsStayBounded(t *testing.T) {
	cfg := DefaultConfig(16, 6)
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]float64, 16)
	for i := range img {
		img[i] = float64(i%2) * 0.9
	}
	for epoch := 0; epoch < 20; epoch++ {
		net.present(img, 40, true)
	}
	for i, w := range net.W {
		if w < 0 || w > cfg.WMax {
			t.Fatalf("weight %d escaped bounds: %v", i, w)
		}
	}
}

func TestLearningMovesWeightsTowardStimulus(t *testing.T) {
	cfg := DefaultConfig(8, 2)
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stimulus lights only the first 4 pixels.
	img := []float64{1, 1, 1, 1, 0, 0, 0, 0}
	for epoch := 0; epoch < 30; epoch++ {
		net.present(img, 40, true)
	}
	// Some neuron's receptive field must now prefer the lit half.
	adapted := false
	for j := 0; j < cfg.Neurons; j++ {
		row := net.W[j*cfg.Inputs : (j+1)*cfg.Inputs]
		lit, dark := 0.0, 0.0
		for i := 0; i < 4; i++ {
			lit += row[i]
			dark += row[4+i]
		}
		if lit > dark*1.5 {
			adapted = true
		}
	}
	if !adapted {
		t.Fatal("no neuron's receptive field adapted to the stimulus")
	}
}

func TestAdaptiveThresholdHomeostasis(t *testing.T) {
	cfg := DefaultConfig(8, 3)
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	img := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	net.present(img, 200, false)
	// The most active neuron must have accumulated threshold offset.
	maxTheta := 0.0
	for _, th := range net.Theta {
		if th > maxTheta {
			maxTheta = th
		}
	}
	if maxTheta <= 0 {
		t.Fatal("no adaptive threshold accumulated under strong drive")
	}
}

// End-to-end: unsupervised STDP + class assignment must classify a
// reduced digits task clearly above chance. This is the paper's §2
// observation in miniature: the approach works for shallow networks on
// easy tasks (and does not scale, which is why conversion matters).
func TestSTDPLearnsReducedDigits(t *testing.T) {
	set := dataset.SynthDigits(dataset.DigitsConfig{
		TrainPerClass: 25, TestPerClass: 8, Noise: 0.02, Seed: 77,
	})
	const classes = 3 // digits 0, 1, 2
	filter := func(samples []dataset.Sample) ([][]float64, []int) {
		var imgs [][]float64
		var labels []int
		for _, s := range samples {
			if s.Label < classes {
				imgs = append(imgs, s.Image)
				labels = append(labels, s.Label)
			}
		}
		return imgs, labels
	}
	trainX, trainY := filter(set.Train)
	testX, testY := filter(set.Test)

	cfg := DefaultConfig(set.InputSize(), 24)
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 60
	for epoch := 0; epoch < 5; epoch++ {
		net.Train(trainX, steps)
	}
	net.AssignClasses(trainX, trainY, classes, steps)

	acc := net.Accuracy(testX, testY, classes, steps)
	if acc < 0.55 { // chance is 1/3
		t.Fatalf("STDP accuracy %.3f, want > 0.55 on 3-class digits", acc)
	}
}

func TestClassifySilentReturnsMinusOne(t *testing.T) {
	net, err := New(DefaultConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Zero image cannot drive any input spikes.
	if got := net.Classify([]float64{0, 0, 0, 0}, 2, 20); got != -1 {
		t.Fatalf("silent classification = %d, want -1", got)
	}
}
