// Package stdp implements the direct-training alternative the paper's
// Section 2.3 contrasts conversion against: an unsupervised shallow
// spiking network trained with spike-timing-dependent plasticity in the
// style of Diehl & Cook 2015 (the paper's reference [8]).
//
// The model is a single excitatory layer of leaky integrate-and-fire
// neurons with adaptive thresholds and winner-take-all lateral
// inhibition, driven by Bernoulli (Poisson-like) pixel spike trains.
// Learning is trace-based: each input synapse keeps a presynaptic trace,
// and when a postsynaptic neuron fires its weights move toward the
// recent input pattern (Δw = η·(x_pre − x_tar)·(w_max − w)). After
// unsupervised training, neurons are assigned to the class they respond
// to most, and classification is a spike-count vote.
//
// It exists as a baseline: the paper's argument is that this route does
// not scale to deep networks, which is why conversion (and burst coding)
// matter.
package stdp

import (
	"fmt"

	"burstsnn/internal/mathx"
)

// Config parameterizes the network and its learning rule.
type Config struct {
	Inputs  int // input neurons (pixels)
	Neurons int // excitatory neurons

	// LIF dynamics.
	MemDecay float64 // per-step membrane retention (e.g. 0.9)
	VThBase  float64 // resting threshold
	// Adaptive threshold (homeostasis): each spike adds ThetaPlus, which
	// decays by ThetaDecay per step, so over-active neurons back off.
	ThetaPlus  float64
	ThetaDecay float64

	// Input drive: pixel value v fires with probability v·MaxRate per
	// step, delivering unit current through the synapse weight.
	MaxRate float64

	// STDP.
	TraceDecay float64 // presynaptic trace retention per step
	LearnRate  float64
	TraceTar   float64 // x_tar: trace level that leaves a weight unchanged
	WMax       float64

	// Lateral inhibition: when a neuron fires, every other neuron's
	// membrane is clamped down by this amount (soft winner-take-all).
	Inhibition float64

	Seed uint64
}

// DefaultConfig returns parameters that learn digit prototypes on the
// synthetic digits workload in a few presentations per class.
func DefaultConfig(inputs, neurons int) Config {
	return Config{
		Inputs: inputs, Neurons: neurons,
		MemDecay: 0.9, VThBase: 0.6,
		ThetaPlus: 0.08, ThetaDecay: 0.9995,
		MaxRate:    0.5,
		TraceDecay: 0.8, LearnRate: 0.05, TraceTar: 0.2, WMax: 1.0,
		Inhibition: 2.0,
		Seed:       1,
	}
}

// Validate rejects unusable parameters.
func (c Config) Validate() error {
	if c.Inputs <= 0 || c.Neurons <= 0 {
		return fmt.Errorf("stdp: need positive inputs/neurons, got %d/%d", c.Inputs, c.Neurons)
	}
	if c.MemDecay <= 0 || c.MemDecay >= 1 || c.TraceDecay <= 0 || c.TraceDecay >= 1 {
		return fmt.Errorf("stdp: decays must be in (0,1)")
	}
	if c.WMax <= 0 || c.LearnRate <= 0 || c.VThBase <= 0 {
		return fmt.Errorf("stdp: non-positive learning parameters")
	}
	if c.MaxRate <= 0 || c.MaxRate > 1 {
		return fmt.Errorf("stdp: MaxRate must be in (0,1]")
	}
	return nil
}

// Network is the trainable shallow SNN.
type Network struct {
	Cfg Config
	// W is Neurons × Inputs, each weight in [0, WMax].
	W []float64
	// Theta is the adaptive threshold offset per neuron.
	Theta []float64
	// Assign maps each neuron to its class after AssignClasses (-1
	// before).
	Assign []int

	rng *mathx.RNG
	// transient state
	vmem  []float64
	trace []float64
}

// New creates a network with uniformly random initial weights.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := mathx.NewRNG(cfg.Seed)
	n := &Network{
		Cfg:    cfg,
		W:      make([]float64, cfg.Neurons*cfg.Inputs),
		Theta:  make([]float64, cfg.Neurons),
		Assign: make([]int, cfg.Neurons),
		rng:    r,
		vmem:   make([]float64, cfg.Neurons),
		trace:  make([]float64, cfg.Inputs),
	}
	for i := range n.W {
		n.W[i] = r.Range(0.1, 0.4) * cfg.WMax
	}
	for i := range n.Assign {
		n.Assign[i] = -1
	}
	return n, nil
}

// present runs one image for steps time steps. When learn is true the
// STDP rule updates weights. It returns each neuron's spike count.
func (n *Network) present(image []float64, steps int, learn bool) []int {
	cfg := n.Cfg
	for i := range n.vmem {
		n.vmem[i] = 0
	}
	for i := range n.trace {
		n.trace[i] = 0
	}
	counts := make([]int, cfg.Neurons)

	inSpikes := make([]int, 0, cfg.Inputs)
	for t := 0; t < steps; t++ {
		// Input spikes for this step.
		inSpikes = inSpikes[:0]
		for i, v := range image {
			n.trace[i] *= cfg.TraceDecay
			if v > 0 && n.rng.Bernoulli(v*cfg.MaxRate) {
				inSpikes = append(inSpikes, i)
				n.trace[i] += 1
			}
		}
		// Integrate.
		for j := 0; j < cfg.Neurons; j++ {
			n.vmem[j] *= cfg.MemDecay
			row := n.W[j*cfg.Inputs : (j+1)*cfg.Inputs]
			sum := 0.0
			for _, i := range inSpikes {
				sum += row[i]
			}
			n.vmem[j] += sum / float64(cfg.Inputs) * 8 // scale drive to threshold range
		}
		// Fire with winner-take-all: highest over-threshold neuron wins.
		winner, best := -1, 0.0
		for j := 0; j < cfg.Neurons; j++ {
			over := n.vmem[j] - (cfg.VThBase + n.Theta[j])
			if over >= 0 && (winner == -1 || over > best) {
				winner, best = j, over
			}
			n.Theta[j] *= cfg.ThetaDecay
		}
		if winner >= 0 {
			counts[winner]++
			n.vmem[winner] = 0
			n.Theta[winner] += cfg.ThetaPlus
			// Lateral inhibition.
			for j := 0; j < cfg.Neurons; j++ {
				if j != winner {
					n.vmem[j] -= cfg.Inhibition
					if n.vmem[j] < 0 {
						n.vmem[j] = 0
					}
				}
			}
			if learn {
				row := n.W[winner*cfg.Inputs : (winner+1)*cfg.Inputs]
				for i := range row {
					dw := cfg.LearnRate * (n.trace[i] - cfg.TraceTar) * (cfg.WMax - row[i])
					row[i] = mathx.Clamp(row[i]+dw, 0, cfg.WMax)
				}
			}
		}
	}
	return counts
}

// Train presents the images once each (unsupervised; labels are not
// used).
func (n *Network) Train(images [][]float64, stepsPerImage int) {
	for _, img := range images {
		n.present(img, stepsPerImage, true)
	}
}

// AssignClasses labels every neuron with the class it responds to most
// over the given labelled set (the supervision-free readout of Diehl &
// Cook).
func (n *Network) AssignClasses(images [][]float64, labels []int, classes, stepsPerImage int) {
	votes := make([][]float64, n.Cfg.Neurons)
	for j := range votes {
		votes[j] = make([]float64, classes)
	}
	for k, img := range images {
		counts := n.present(img, stepsPerImage, false)
		for j, c := range counts {
			votes[j][labels[k]] += float64(c)
		}
	}
	for j := range votes {
		n.Assign[j] = mathx.ArgMax(votes[j])
		total := 0.0
		for _, v := range votes[j] {
			total += v
		}
		if total == 0 {
			n.Assign[j] = -1 // silent neuron: no vote
		}
	}
}

// Classify returns the class vote for one image, or -1 when the network
// is silent.
func (n *Network) Classify(image []float64, classes, stepsPerImage int) int {
	counts := n.present(image, stepsPerImage, false)
	score := make([]float64, classes)
	any := false
	for j, c := range counts {
		if n.Assign[j] >= 0 && c > 0 {
			score[n.Assign[j]] += float64(c)
			any = true
		}
	}
	if !any {
		return -1
	}
	return mathx.ArgMax(score)
}

// Accuracy classifies a labelled set and returns the correct fraction
// (unclassifiable images count as wrong).
func (n *Network) Accuracy(images [][]float64, labels []int, classes, stepsPerImage int) float64 {
	if len(images) == 0 {
		return 0
	}
	correct := 0
	for k, img := range images {
		if n.Classify(img, classes, stepsPerImage) == labels[k] {
			correct++
		}
	}
	return float64(correct) / float64(len(images))
}
