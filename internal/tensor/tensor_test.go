package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"burstsnn/internal/mathx"
)

func TestNewAndAt(t *testing.T) {
	a := New(2, 3)
	if a.Len() != 6 || a.Dims() != 2 {
		t.Fatalf("unexpected dims: %v", a.Shape)
	}
	a.Set(5, 1, 2)
	if a.At(1, 2) != 5 {
		t.Fatal("Set/At mismatch")
	}
	if a.At(0, 0) != 0 {
		t.Fatal("new tensor not zeroed")
	}
}

func TestAtBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds At did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched FromSlice did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(99, 0, 1)
	if a.At(0, 1) != 99 {
		t.Fatal("Reshape must share backing data")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Data[0] = 7
	if a.Data[0] != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	a.AddInPlace(b)
	if a.Data[2] != 33 {
		t.Fatalf("AddInPlace: %v", a.Data)
	}
	a.Scale(2)
	if a.Data[0] != 22 {
		t.Fatalf("Scale: %v", a.Data)
	}
	a.AxpyInPlace(-1, b)
	if a.Data[1] != 24 {
		t.Fatalf("Axpy: %v", a.Data)
	}
	if a.Sum() != 12+24+36 {
		t.Fatalf("Sum: %v", a.Sum())
	}
}

func TestMaxAbs(t *testing.T) {
	a := FromSlice([]float64{1, -9, 3}, 3)
	if a.MaxAbs() != 9 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := mathx.NewRNG(1)
	a := New(4, 4)
	a.RandNorm(r, 0, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if math.Abs(c.Data[i]-a.Data[i]) > 1e-12 {
			t.Fatal("A·I != A")
		}
	}
}

// TestMatMulParallelMatchesSerial drives a product large enough to take the
// parallel path and checks it against the serial kernel.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	r := mathx.NewRNG(2)
	m, k, n := 64, 64, 64
	a := New(m, k)
	b := New(k, n)
	a.RandNorm(r, 0, 1)
	b.RandNorm(r, 0, 1)
	got := MatMul(a, b)
	want := New(m, n)
	matmulRows(a.Data, b.Data, want.Data, 0, m, k, n)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("parallel MatMul diverges at %d", i)
		}
	}
}

func TestMatMulTransA(t *testing.T) {
	r := mathx.NewRNG(3)
	a := New(5, 3) // k×m
	b := New(5, 4) // k×n
	a.RandNorm(r, 0, 1)
	b.RandNorm(r, 0, 1)
	got := MatMulTransA(a, b)
	// Reference: transpose a then multiply.
	at := New(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	want := MatMul(at, b)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatal("MatMulTransA mismatch")
		}
	}
}

func TestMatMulTransB(t *testing.T) {
	r := mathx.NewRNG(4)
	a := New(3, 5)
	b := New(4, 5)
	a.RandNorm(r, 0, 1)
	b.RandNorm(r, 0, 1)
	got := MatMulTransB(a, b)
	bt := New(5, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			bt.Set(b.At(i, j), j, i)
		}
	}
	want := MatMul(a, bt)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatal("MatMulTransB mismatch")
		}
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := MatVec(a, []float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MatVec = %v", y)
	}
}

// Property: matmul distributes over addition, (A+B)·C == A·C + B·C.
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		m, k, n := 3+r.Intn(5), 3+r.Intn(5), 3+r.Intn(5)
		a := New(m, k)
		b := New(m, k)
		c := New(k, n)
		a.RandNorm(r, 0, 1)
		b.RandNorm(r, 0, 1)
		c.RandNorm(r, 0, 1)
		ab := a.Clone()
		ab.AddInPlace(b)
		left := MatMul(ab, c)
		right := MatMul(a, c)
		right.AddInPlace(MatMul(b, c))
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
