package tensor

import "fmt"

// ConvSpec describes a 2-D convolution or pooling geometry over CHW
// tensors. Only square strides/padding are supported because that is all
// the model zoo uses.
type ConvSpec struct {
	InC, InH, InW int // input channels, height, width
	OutC          int // output channels (ignored by pooling)
	KH, KW        int // kernel height and width
	Stride        int
	Pad           int
}

// OutH returns the output height for the spec.
func (s ConvSpec) OutH() int { return (s.InH+2*s.Pad-s.KH)/s.Stride + 1 }

// OutW returns the output width for the spec.
func (s ConvSpec) OutW() int { return (s.InW+2*s.Pad-s.KW)/s.Stride + 1 }

// Validate checks that the geometry is internally consistent.
func (s ConvSpec) Validate() error {
	if s.InC <= 0 || s.InH <= 0 || s.InW <= 0 {
		return fmt.Errorf("tensor: invalid input dims %dx%dx%d", s.InC, s.InH, s.InW)
	}
	if s.KH <= 0 || s.KW <= 0 || s.Stride <= 0 || s.Pad < 0 {
		return fmt.Errorf("tensor: invalid kernel %dx%d stride %d pad %d", s.KH, s.KW, s.Stride, s.Pad)
	}
	if s.OutH() <= 0 || s.OutW() <= 0 {
		return fmt.Errorf("tensor: empty output for spec %+v", s)
	}
	return nil
}

// Im2Col expands a CHW input into a (KH*KW*InC) × (OutH*OutW) column
// matrix so convolution becomes one MatMul. Out-of-bounds (padding)
// samples are zero.
func Im2Col(in *Tensor, s ConvSpec) *Tensor {
	outH, outW := s.OutH(), s.OutW()
	rows := s.InC * s.KH * s.KW
	cols := outH * outW
	out := New(rows, cols)
	for c := 0; c < s.InC; c++ {
		chanBase := c * s.InH * s.InW
		for kh := 0; kh < s.KH; kh++ {
			for kw := 0; kw < s.KW; kw++ {
				row := (c*s.KH+kh)*s.KW + kw
				dst := out.Data[row*cols : (row+1)*cols]
				for oy := 0; oy < outH; oy++ {
					iy := oy*s.Stride + kh - s.Pad
					if iy < 0 || iy >= s.InH {
						continue
					}
					srcRow := chanBase + iy*s.InW
					dstRow := oy * outW
					for ox := 0; ox < outW; ox++ {
						ix := ox*s.Stride + kw - s.Pad
						if ix < 0 || ix >= s.InW {
							continue
						}
						dst[dstRow+ox] = in.Data[srcRow+ix]
					}
				}
			}
		}
	}
	return out
}

// Col2Im scatters a column matrix produced by Im2Col back into a CHW
// tensor, accumulating overlapping contributions. It is the adjoint of
// Im2Col and is used by the convolution backward pass.
func Col2Im(cols *Tensor, s ConvSpec) *Tensor {
	outH, outW := s.OutH(), s.OutW()
	nCols := outH * outW
	out := New(s.InC, s.InH, s.InW)
	for c := 0; c < s.InC; c++ {
		chanBase := c * s.InH * s.InW
		for kh := 0; kh < s.KH; kh++ {
			for kw := 0; kw < s.KW; kw++ {
				row := (c*s.KH+kh)*s.KW + kw
				src := cols.Data[row*nCols : (row+1)*nCols]
				for oy := 0; oy < outH; oy++ {
					iy := oy*s.Stride + kh - s.Pad
					if iy < 0 || iy >= s.InH {
						continue
					}
					dstRow := chanBase + iy*s.InW
					srcRow := oy * outW
					for ox := 0; ox < outW; ox++ {
						ix := ox*s.Stride + kw - s.Pad
						if ix < 0 || ix >= s.InW {
							continue
						}
						out.Data[dstRow+ix] += src[srcRow+ox]
					}
				}
			}
		}
	}
	return out
}

// Conv2D applies kernel weights w (OutC × InC*KH*KW) plus per-channel
// bias to a CHW input, returning an OutC×OutH×OutW tensor. It is the
// reference dense forward used by the DNN path; the SNN path uses
// event-driven scattering instead.
func Conv2D(in *Tensor, w *Tensor, bias []float64, s ConvSpec) *Tensor {
	cols := Im2Col(in, s)
	prod := MatMul(w, cols) // OutC × (OutH*OutW)
	outH, outW := s.OutH(), s.OutW()
	if bias != nil {
		for oc := 0; oc < s.OutC; oc++ {
			b := bias[oc]
			row := prod.Data[oc*outH*outW : (oc+1)*outH*outW]
			for i := range row {
				row[i] += b
			}
		}
	}
	return prod.Reshape(s.OutC, outH, outW)
}

// Conv2DNaive is a direct-loop reference implementation used only by tests
// to validate the im2col path.
func Conv2DNaive(in *Tensor, w *Tensor, bias []float64, s ConvSpec) *Tensor {
	outH, outW := s.OutH(), s.OutW()
	out := New(s.OutC, outH, outW)
	for oc := 0; oc < s.OutC; oc++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				sum := 0.0
				if bias != nil {
					sum = bias[oc]
				}
				for ic := 0; ic < s.InC; ic++ {
					for kh := 0; kh < s.KH; kh++ {
						iy := oy*s.Stride + kh - s.Pad
						if iy < 0 || iy >= s.InH {
							continue
						}
						for kw := 0; kw < s.KW; kw++ {
							ix := ox*s.Stride + kw - s.Pad
							if ix < 0 || ix >= s.InW {
								continue
							}
							wIdx := ((oc*s.InC+ic)*s.KH+kh)*s.KW + kw
							sum += w.Data[wIdx] * in.Data[(ic*s.InH+iy)*s.InW+ix]
						}
					}
				}
				out.Data[(oc*outH+oy)*outW+ox] = sum
			}
		}
	}
	return out
}

// AvgPool2D applies non-overlapping average pooling with the given window
// (stride == window) to a CHW tensor.
func AvgPool2D(in *Tensor, c, h, w, window int) *Tensor {
	outH, outW := h/window, w/window
	out := New(c, outH, outW)
	inv := 1.0 / float64(window*window)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				sum := 0.0
				for ky := 0; ky < window; ky++ {
					row := (ch*h + oy*window + ky) * w
					for kx := 0; kx < window; kx++ {
						sum += in.Data[row+ox*window+kx]
					}
				}
				out.Data[(ch*outH+oy)*outW+ox] = sum * inv
			}
		}
	}
	return out
}

// MaxPool2D applies non-overlapping max pooling and also returns the flat
// input index of each window maximum (for backprop routing).
func MaxPool2D(in *Tensor, c, h, w, window int) (*Tensor, []int) {
	outH, outW := h/window, w/window
	out := New(c, outH, outW)
	arg := make([]int, c*outH*outW)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				best := -1
				bestV := 0.0
				for ky := 0; ky < window; ky++ {
					row := (ch*h + oy*window + ky) * w
					for kx := 0; kx < window; kx++ {
						idx := row + ox*window + kx
						if best == -1 || in.Data[idx] > bestV {
							best, bestV = idx, in.Data[idx]
						}
					}
				}
				o := (ch*outH+oy)*outW + ox
				out.Data[o] = bestV
				arg[o] = best
			}
		}
	}
	return out, arg
}
