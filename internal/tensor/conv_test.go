package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"burstsnn/internal/mathx"
)

func TestConvSpecGeometry(t *testing.T) {
	s := ConvSpec{InC: 3, InH: 32, InW: 32, OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if s.OutH() != 32 || s.OutW() != 32 {
		t.Fatalf("same-pad 3x3 conv should preserve dims, got %dx%d", s.OutH(), s.OutW())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s2 := ConvSpec{InC: 1, InH: 4, InW: 4, OutC: 1, KH: 2, KW: 2, Stride: 2, Pad: 0}
	if s2.OutH() != 2 || s2.OutW() != 2 {
		t.Fatalf("stride-2 geometry wrong: %dx%d", s2.OutH(), s2.OutW())
	}
}

func TestConvSpecValidateRejectsBad(t *testing.T) {
	bad := []ConvSpec{
		{InC: 0, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1},
		{InC: 1, InH: 4, InW: 4, KH: 0, KW: 3, Stride: 1},
		{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 0},
		{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1, Pad: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid spec %+v", i, s)
		}
	}
}

func TestConv2DMatchesNaive(t *testing.T) {
	r := mathx.NewRNG(10)
	specs := []ConvSpec{
		{InC: 1, InH: 5, InW: 5, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 0},
		{InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 2, InH: 9, InW: 7, OutC: 3, KH: 3, KW: 3, Stride: 2, Pad: 1},
		{InC: 2, InH: 6, InW: 6, OutC: 2, KH: 1, KW: 1, Stride: 1, Pad: 0},
	}
	for si, s := range specs {
		in := New(s.InC, s.InH, s.InW)
		in.RandNorm(r, 0, 1)
		w := New(s.OutC, s.InC*s.KH*s.KW)
		w.RandNorm(r, 0, 1)
		bias := make([]float64, s.OutC)
		for i := range bias {
			bias[i] = r.Norm(0, 1)
		}
		got := Conv2D(in, w, bias, s)
		want := Conv2DNaive(in, w, bias, s)
		if !ShapeEq(got.Shape, want.Shape) {
			t.Fatalf("spec %d: shape %v != %v", si, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("spec %d: im2col conv diverges from naive at %d", si, i)
			}
		}
	}
}

func TestConv2DNilBias(t *testing.T) {
	s := ConvSpec{InC: 1, InH: 3, InW: 3, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 0}
	in := FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3)
	w := New(1, 9)
	w.Fill(1)
	out := Conv2D(in, w, nil, s)
	if out.Data[0] != 45 {
		t.Fatalf("sum kernel = %v, want 45", out.Data[0])
	}
}

// Property: Col2Im is the adjoint of Im2Col, i.e. <Im2Col(x), y> ==
// <x, Col2Im(y)> for all x, y. This is the invariant the conv backward
// pass depends on.
func TestIm2ColAdjointProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		s := ConvSpec{
			InC: 1 + r.Intn(3), InH: 4 + r.Intn(5), InW: 4 + r.Intn(5),
			OutC: 1, KH: 3, KW: 3, Stride: 1 + r.Intn(2), Pad: r.Intn(2),
		}
		if s.Validate() != nil {
			return true
		}
		x := New(s.InC, s.InH, s.InW)
		x.RandNorm(r, 0, 1)
		cx := Im2Col(x, s)
		y := New(cx.Shape[0], cx.Shape[1])
		y.RandNorm(r, 0, 1)
		dot1 := 0.0
		for i := range cx.Data {
			dot1 += cx.Data[i] * y.Data[i]
		}
		back := Col2Im(y, s)
		dot2 := 0.0
		for i := range x.Data {
			dot2 += x.Data[i] * back.Data[i]
		}
		return math.Abs(dot1-dot2) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAvgPool2D(t *testing.T) {
	in := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out := AvgPool2D(in, 1, 4, 4, 2)
	want := []float64{3.5, 5.5, 11.5, 13.5}
	for i, v := range want {
		if math.Abs(out.Data[i]-v) > 1e-12 {
			t.Fatalf("AvgPool = %v, want %v", out.Data, want)
		}
	}
}

func TestAvgPoolConservesMean(t *testing.T) {
	r := mathx.NewRNG(20)
	in := New(2, 6, 6)
	in.RandNorm(r, 0, 1)
	out := AvgPool2D(in, 2, 6, 6, 2)
	inMean := in.Sum() / float64(in.Len())
	outMean := out.Sum() / float64(out.Len())
	if math.Abs(inMean-outMean) > 1e-12 {
		t.Fatalf("average pooling must conserve the mean: %v vs %v", inMean, outMean)
	}
}

func TestMaxPool2D(t *testing.T) {
	in := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out, arg := MaxPool2D(in, 1, 4, 4, 2)
	want := []float64{6, 8, 14, 16}
	wantArg := []int{5, 7, 13, 15}
	for i := range want {
		if out.Data[i] != want[i] || arg[i] != wantArg[i] {
			t.Fatalf("MaxPool = %v args %v", out.Data, arg)
		}
	}
}

func TestMaxPoolDominatesAvgPoolProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		in := New(1, 4, 4)
		in.RandNorm(r, 0, 1)
		mx, _ := MaxPool2D(in, 1, 4, 4, 2)
		av := AvgPool2D(in, 1, 4, 4, 2)
		for i := range mx.Data {
			if mx.Data[i] < av.Data[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
