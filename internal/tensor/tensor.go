// Package tensor implements the dense numerical substrate used by both the
// DNN trainer and the spiking simulator: an n-dimensional float64 tensor
// with the matrix and convolution kernels the repository needs.
//
// The package deliberately stays small and allocation-conscious rather than
// general: row-major storage, explicit shapes, and a handful of fused
// kernels (im2col convolution, pooling) that dominate runtime.
package tensor

import (
	"fmt"

	"burstsnn/internal/mathx"
)

// Tensor is a dense row-major n-dimensional array of float64.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %v", shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly, not copied; len(data) must equal the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// Reshape returns a view with a new shape sharing the same backing data.
// The volume must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: t.Data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, v := range idx {
		if v < 0 || v >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + v
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero resets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// RandNorm fills the tensor with N(mean, std) samples from r.
func (t *Tensor) RandNorm(r *mathx.RNG, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = r.Norm(mean, std)
	}
}

// AddInPlace accumulates o into t elementwise. Shapes must have equal
// volume.
func (t *Tensor) AddInPlace(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AddInPlace size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Scale multiplies every element by k.
func (t *Tensor) Scale(k float64) {
	for i := range t.Data {
		t.Data[i] *= k
	}
}

// AxpyInPlace computes t += k*o elementwise.
func (t *Tensor) AxpyInPlace(k float64, o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AxpyInPlace size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += k * v
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// ShapeEq reports whether two shapes are identical.
func ShapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
