package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the amount of multiply-accumulate work below which
// MatMul stays single-threaded; goroutine fan-out only pays off for the
// larger convolution matrices.
const parallelThreshold = 1 << 16

// MatMul computes C = A·B for A (m×k) and B (k×n), returning a new m×n
// tensor. It uses the cache-friendly ikj loop order and splits rows across
// goroutines for large products.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMul requires 2-D operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", k, k2))
	}
	c := New(m, n)
	work := m * k * n
	if work < parallelThreshold || runtime.GOMAXPROCS(0) == 1 {
		matmulRows(a.Data, b.Data, c.Data, 0, m, k, n)
		return c
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRows(a.Data, b.Data, c.Data, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
	return c
}

// matmulRows computes rows [lo,hi) of the product using ikj ordering so the
// inner loop walks both B and C contiguously.
func matmulRows(a, b, c []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes C = Aᵀ·B for A (k×m) and B (k×n).
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulTransA requires 2-D operands")
	}
	k, m := a.Shape[0], a.Shape[1]
	if b.Shape[0] != k {
		panic("tensor: MatMulTransA inner dim mismatch")
	}
	n := b.Shape[1]
	c := New(m, n)
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c.Data[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
	return c
}

// MatMulTransB computes C = A·Bᵀ for A (m×k) and B (n×k).
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulTransB requires 2-D operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if b.Shape[1] != k {
		panic("tensor: MatMulTransB inner dim mismatch")
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		ci := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] = s
		}
	}
	return c
}

// MatVec computes y = A·x for A (m×n) and x (n).
func MatVec(a *Tensor, x []float64) []float64 {
	if a.Dims() != 2 {
		panic("tensor: MatVec requires a 2-D matrix")
	}
	m, n := a.Shape[0], a.Shape[1]
	if len(x) != n {
		panic("tensor: MatVec length mismatch")
	}
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		s := 0.0
		for j, w := range row {
			s += w * x[j]
		}
		y[i] = s
	}
	return y
}
