package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"burstsnn/internal/coding"
	"burstsnn/internal/mathx"
)

func TestISIs(t *testing.T) {
	tr := SpikeTrain{2, 5, 6, 10}
	want := []float64{3, 1, 4}
	got := tr.ISIs()
	if len(got) != len(want) {
		t.Fatalf("ISIs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ISIs = %v, want %v", got, want)
		}
	}
	if (SpikeTrain{5}).ISIs() != nil {
		t.Fatal("single spike has no ISIs")
	}
}

func TestFiringRateEq11(t *testing.T) {
	// λ = n/ΣI: 3 ISIs spanning 8 steps => 0.375.
	tr := SpikeTrain{2, 5, 6, 10}
	if got := tr.FiringRate(); math.Abs(got-3.0/8) > 1e-12 {
		t.Fatalf("rate = %v", got)
	}
	if (SpikeTrain{}).FiringRate() != 0 || (SpikeTrain{3}).FiringRate() != 0 {
		t.Fatal("degenerate trains must have rate 0")
	}
}

func TestRegularityEq12(t *testing.T) {
	// Perfectly periodic => κ = 0.
	if got := (SpikeTrain{0, 4, 8, 12}).Regularity(); got != 0 {
		t.Fatalf("periodic regularity = %v", got)
	}
	// Bursty train (short ISIs then a long gap) has high κ.
	bursty := SpikeTrain{0, 1, 2, 50, 51, 52, 100}
	if got := bursty.Regularity(); got < 1 {
		t.Fatalf("bursty κ = %v, want > 1", got)
	}
}

func TestISIHBuckets(t *testing.T) {
	trains := []SpikeTrain{{0, 1, 2, 10}, {0, 100}}
	h := ISIH(trains, 5)
	// ISIs: 1,1,8 and 100 => bins: 1→2, 8→last, 100→last.
	if h[0] != 2 || h[4] != 2 {
		t.Fatalf("ISIH = %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 4 {
		t.Fatalf("ISIH dropped intervals: %v", h)
	}
}

func TestBurstsComposition(t *testing.T) {
	trains := []SpikeTrain{
		{0, 1, 5, 6, 7, 20},         // burst of 2, burst of 3, isolated
		{0, 1, 2, 3, 4, 5, 6, 7, 8}, // burst of 9 (>5 bucket)
	}
	st := Bursts(trains)
	if st.TotalSpikes != 15 {
		t.Fatalf("total = %d", st.TotalSpikes)
	}
	if st.BurstSpikes != 2+3+9 {
		t.Fatalf("burst spikes = %d", st.BurstSpikes)
	}
	if st.ByLength[0] != 1 || st.ByLength[1] != 1 || st.ByLength[4] != 1 {
		t.Fatalf("composition = %v", st.ByLength)
	}
	if p := st.PercentBurstSpikes(); math.Abs(p-14.0/15) > 1e-12 {
		t.Fatalf("percent = %v", p)
	}
}

func TestBurstsEmptyAndSingle(t *testing.T) {
	st := Bursts([]SpikeTrain{{}, {5}})
	if st.TotalSpikes != 1 || st.BurstSpikes != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PercentBurstSpikes() != 0 {
		t.Fatal("no bursts expected")
	}
}

// Property: burst spikes never exceed total spikes, and every counted
// burst has length ≥ 2.
func TestBurstsInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		var tr SpikeTrain
		t0 := 0
		for i := 0; i < 50; i++ {
			t0 += 1 + r.Intn(4)
			tr = append(tr, t0)
		}
		st := Bursts([]SpikeTrain{tr})
		if st.BurstSpikes > st.TotalSpikes {
			return false
		}
		burstCount := 0
		for _, c := range st.ByLength {
			burstCount += c
		}
		// Each burst contributes at least 2 spikes.
		return st.BurstSpikes >= 2*burstCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpikingDensity(t *testing.T) {
	if got := SpikingDensity(1000, 100, 50); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("density = %v", got)
	}
	if SpikingDensity(10, 0, 5) != 0 || SpikingDensity(10, 5, 0) != 0 {
		t.Fatal("degenerate density must be 0")
	}
}

func TestPatternExcludesSilentNeurons(t *testing.T) {
	trains := []SpikeTrain{
		{0, 4, 8, 12}, // periodic: κ=0, λ=0.25
		{7},           // single spike: excluded
		{},            // silent: excluded
	}
	p := Pattern(trains)
	if p.Neurons != 1 {
		t.Fatalf("neurons = %d", p.Neurons)
	}
	if math.Abs(p.MeanLogRate-math.Log(0.25)) > 1e-12 {
		t.Fatalf("mean log rate = %v", p.MeanLogRate)
	}
	if p.MeanRegularity != 0 {
		t.Fatalf("mean regularity = %v", p.MeanRegularity)
	}
}

func TestRecorderSamplesAndRecords(t *testing.T) {
	rec := NewRecorder(10, 0.3, 1)
	sampled := rec.SortedSampledNeurons()
	if len(sampled) != 3 {
		t.Fatalf("sampled %d neurons, want 3", len(sampled))
	}
	// Fire all neurons at t=0 and t=1.
	evs := make([]coding.Event, 10)
	for i := range evs {
		evs[i] = coding.Event{Index: i, Payload: 1}
	}
	rec.Probe(0, evs)
	rec.Probe(1, evs)
	for _, tr := range rec.Trains() {
		if len(tr) != 2 || tr[0] != 0 || tr[1] != 1 {
			t.Fatalf("train = %v", tr)
		}
	}
	rec.Reset()
	for _, tr := range rec.Trains() {
		if len(tr) != 0 {
			t.Fatal("Reset did not clear trains")
		}
	}
}

func TestRecorderDeterministicSampling(t *testing.T) {
	a := NewRecorder(100, 0.1, 7).SortedSampledNeurons()
	b := NewRecorder(100, 0.1, 7).SortedSampledNeurons()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestRecorderMinimumOneNeuron(t *testing.T) {
	rec := NewRecorder(5, 0.0001, 3)
	if len(rec.Trains()) != 1 {
		t.Fatalf("expected at least one sampled neuron, got %d", len(rec.Trains()))
	}
}
