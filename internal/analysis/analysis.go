// Package analysis computes the spike-pattern statistics the paper uses
// to characterize neural codings: inter-spike-interval histograms
// (Fig. 1C), burst detection and length composition (Fig. 2), firing rate
// λ (Eq. 11), firing regularity κ (Eq. 12, the ISI coefficient of
// variation), the firing-rate/regularity scatter (Fig. 5), and spiking
// density (Table 2, footnote a).
package analysis

import (
	"math"
	"sort"

	"burstsnn/internal/coding"
	"burstsnn/internal/mathx"
)

// SpikeTrain is the ordered list of time steps at which one neuron fired.
type SpikeTrain []int

// ISIs returns the inter-spike intervals of the train.
func (s SpikeTrain) ISIs() []float64 {
	if len(s) < 2 {
		return nil
	}
	out := make([]float64, len(s)-1)
	for i := 1; i < len(s); i++ {
		out[i-1] = float64(s[i] - s[i-1])
	}
	return out
}

// FiringRate returns λ = n/ΣIᵢ (Eq. 11): the number of ISIs divided by
// the observed inter-spike time. Trains with fewer than two spikes have
// rate 0.
func (s SpikeTrain) FiringRate() float64 {
	isis := s.ISIs()
	if len(isis) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range isis {
		sum += v
	}
	if sum == 0 {
		return 0
	}
	return float64(len(isis)) / sum
}

// Regularity returns κ = std(I)/mean(I) (Eq. 12). A perfectly periodic
// train has κ = 0; Poisson-like trains approach 1; bursty trains exceed 1.
func (s SpikeTrain) Regularity() float64 {
	return mathx.CV(s.ISIs())
}

// ISIH builds the inter-spike-interval histogram with unit bins
// [1, maxISI]; intervals above maxISI land in the last bin (matching the
// paper's Fig. 1C bucketing).
func ISIH(trains []SpikeTrain, maxISI int) []int {
	counts := make([]int, maxISI)
	for _, tr := range trains {
		for _, isi := range tr.ISIs() {
			bin := int(isi) - 1
			if bin < 0 {
				bin = 0
			}
			if bin >= maxISI {
				bin = maxISI - 1
			}
			counts[bin]++
		}
	}
	return counts
}

// BurstStats describes the burst content of a set of spike trains. A
// burst is a maximal run of consecutive-time-step spikes (ISI = 1) of
// length ≥ 2, the short-ISI group of Section 3.1.
type BurstStats struct {
	TotalSpikes int
	BurstSpikes int
	// ByLength counts bursts of length 2, 3, 4, 5, and >5 (index 0..4),
	// the composition Fig. 2 stacks.
	ByLength [5]int
}

// PercentBurstSpikes returns the share of all spikes that belong to a
// burst, in [0,1].
func (b BurstStats) PercentBurstSpikes() float64 {
	if b.TotalSpikes == 0 {
		return 0
	}
	return float64(b.BurstSpikes) / float64(b.TotalSpikes)
}

// Bursts analyzes the burst composition of the trains.
func Bursts(trains []SpikeTrain) BurstStats {
	var st BurstStats
	for _, tr := range trains {
		st.TotalSpikes += len(tr)
		run := 1
		flush := func() {
			if run >= 2 {
				st.BurstSpikes += run
				idx := run - 2
				if idx > 4 {
					idx = 4
				}
				st.ByLength[idx]++
			}
			run = 1
		}
		for i := 1; i < len(tr); i++ {
			if tr[i] == tr[i-1]+1 {
				run++
			} else {
				flush()
			}
		}
		if len(tr) > 0 {
			flush()
		}
	}
	return st
}

// SpikingDensity is the paper's efficiency metric: expected spikes per
// neuron per time step (Table 2 footnote a).
func SpikingDensity(totalSpikes, neurons, latency int) float64 {
	if neurons == 0 || latency == 0 {
		return 0
	}
	return float64(totalSpikes) / (float64(neurons) * float64(latency))
}

// PatternPoint is one point of the Fig. 5 scatter: the mean log firing
// rate and mean regularity over a neuron sample.
type PatternPoint struct {
	MeanLogRate    float64 // <log λ>, natural log
	MeanRegularity float64 // <κ>
	Neurons        int     // neurons contributing (≥2 spikes each)
}

// Pattern aggregates trains into a PatternPoint. Neurons with fewer than
// two spikes carry no ISI information and are excluded, as in the paper's
// sampling procedure.
func Pattern(trains []SpikeTrain) PatternPoint {
	var logRates, regs []float64
	for _, tr := range trains {
		if len(tr) < 2 {
			continue
		}
		rate := tr.FiringRate()
		if rate <= 0 {
			continue
		}
		logRates = append(logRates, math.Log(rate))
		regs = append(regs, tr.Regularity())
	}
	return PatternPoint{
		MeanLogRate:    mathx.Mean(logRates),
		MeanRegularity: mathx.Mean(regs),
		Neurons:        len(logRates),
	}
}

// Recorder collects spike trains for a sampled subset of a layer's
// neurons. Attach its Probe to an snn.Network layer.
type Recorder struct {
	sampled map[int]int // neuron index -> slot
	trains  []SpikeTrain
}

// NewRecorder samples frac of n neurons (at least one) deterministically
// from seed and returns the recorder.
func NewRecorder(n int, frac float64, seed uint64) *Recorder {
	k := int(math.Ceil(frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	perm := mathx.NewRNG(seed).Perm(n)
	rec := &Recorder{sampled: make(map[int]int, k), trains: make([]SpikeTrain, k)}
	for slot, idx := range perm[:k] {
		rec.sampled[idx] = slot
	}
	return rec
}

// Probe implements the snn probe signature: it appends firing times for
// the sampled neurons.
func (r *Recorder) Probe(t int, events []coding.Event) {
	for _, ev := range events {
		if slot, ok := r.sampled[ev.Index]; ok {
			r.trains[slot] = append(r.trains[slot], t)
		}
	}
}

// Trains returns the recorded spike trains (one per sampled neuron, in
// slot order). Times are already sorted because simulation time is
// monotonic.
func (r *Recorder) Trains() []SpikeTrain { return r.trains }

// Reset clears recorded trains while keeping the neuron sample.
func (r *Recorder) Reset() {
	for i := range r.trains {
		r.trains[i] = nil
	}
}

// SortedSampledNeurons returns the sampled neuron indices (test hook).
func (r *Recorder) SortedSampledNeurons() []int {
	out := make([]int, 0, len(r.sampled))
	for idx := range r.sampled {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}
