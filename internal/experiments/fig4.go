package experiments

import (
	"fmt"
	"strings"
)

// Fig4Curve is one coding combination's accuracy-vs-time-step inference
// curve.
type Fig4Curve struct {
	Combo      string
	AccuracyAt []float64
}

// Fig4Result reproduces Fig. 4: the inference curves of all nine coding
// combinations.
type Fig4Result struct {
	Model  string
	DNNAcc float64
	Steps  int
	Curves []Fig4Curve
}

// Fig4 collects the per-step accuracy curves from the evaluation grid.
func Fig4(l *Lab) (*Fig4Result, error) {
	m, err := l.Model("textures10")
	if err != nil {
		return nil, err
	}
	grid, err := l.EvalGrid("textures10")
	if err != nil {
		return nil, err
	}
	out := &Fig4Result{Model: m.Name, DNNAcc: m.DNNAcc, Steps: l.Settings.Steps}
	for _, combo := range Grid() {
		res := grid[combo.Notation()]
		curve := make([]float64, len(res.AccuracyAt))
		copy(curve, res.AccuracyAt)
		out.Curves = append(out.Curves, Fig4Curve{Combo: combo.Notation(), AccuracyAt: curve})
	}
	return out, nil
}

// At returns a curve subsampled to n points (for compact rendering and
// CSV export).
func (c Fig4Curve) At(n int) []float64 {
	if n <= 0 || len(c.AccuracyAt) == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * len(c.AccuracyAt) / n
		if idx > len(c.AccuracyAt) {
			idx = len(c.AccuracyAt)
		}
		out[i] = c.AccuracyAt[idx-1]
	}
	return out
}

// Render prints sparkline curves plus the step numbers at which each
// combination crosses 50% and 90% of the DNN accuracy.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — inference curves on %s (DNN %.4f, %d steps)\n\n", r.Model, r.DNNAcc, r.Steps)
	t := &table{header: []string{"Coding", "curve (acc 0..1)", "steps→50%DNN", "steps→90%DNN", "final"}}
	for _, c := range r.Curves {
		half, ninety := -1, -1
		for i, a := range c.AccuracyAt {
			if half < 0 && a >= 0.5*r.DNNAcc {
				half = i + 1
			}
			if ninety < 0 && a >= 0.9*r.DNNAcc {
				ninety = i + 1
			}
		}
		final := c.AccuracyAt[len(c.AccuracyAt)-1]
		t.add(c.Combo, sparkline(c.At(32), 0, 1), flat(half), flat(ninety), fnum(final, 3))
	}
	b.WriteString(t.String())
	return b.String()
}
