package experiments

import (
	"strings"
	"sync"
	"testing"

	"burstsnn/internal/coding"
	"burstsnn/internal/core"
)

var (
	labOnce sync.Once
	lab     *Lab
)

// testLab returns a shared quick-settings Lab; models train once per
// test binary.
func testLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		lab = NewLab(QuickSettings())
	})
	return lab
}

func TestModelTrainingAndCache(t *testing.T) {
	l := testLab(t)
	m, err := l.Model("digits")
	if err != nil {
		t.Fatal(err)
	}
	if m.DNNAcc < 0.85 {
		t.Fatalf("digits model acc %.3f", m.DNNAcc)
	}
	// Second call must return the same cached instance.
	m2, err := l.Model("digits")
	if err != nil {
		t.Fatal(err)
	}
	if m != m2 {
		t.Fatal("model cache miss")
	}
	if _, err := l.Model("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestEvalCacheReuse(t *testing.T) {
	l := testLab(t)
	h := core.NewHybrid(coding.Real, coding.Rate)
	a, err := l.Eval("digits", h)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Eval("digits", h)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("eval cache miss for identical key")
	}
	// Different vth must not collide.
	c, err := l.Eval("digits", core.NewHybrid(coding.Real, coding.Burst).WithVTh(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("eval cache collision across configs")
	}
}

func TestFig1Shapes(t *testing.T) {
	res := Fig1(0.7, 64)
	if len(res.Traces) != 3 {
		t.Fatalf("expected 3 traces, got %d", len(res.Traces))
	}
	for _, tr := range res.Traces {
		if len(tr.Spikes) == 0 {
			t.Fatalf("%s trace is silent", tr.Scheme)
		}
		if len(tr.Spikes) != len(tr.Payloads) {
			t.Fatalf("%s: %d spikes vs %d payloads", tr.Scheme, len(tr.Spikes), len(tr.Payloads))
		}
	}
	// Rate coding fires regularly with constant payloads; burst coding
	// must show short-ISI structure for a sub-threshold-per-step input.
	out := res.Render()
	for _, want := range []string{"rate", "phase", "burst", "ISIH"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Smoke(t *testing.T) {
	l := testLab(t)
	res, err := Table1(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("expected 9 rows, got %d", len(res.Rows))
	}
	rows := map[string]Table1Row{}
	for _, row := range res.Rows {
		if row.Accuracy < 0 || row.Accuracy > 1 {
			t.Fatalf("row %s-%s accuracy %v", row.Input, row.Hidden, row.Accuracy)
		}
		if row.Spikes < 0 {
			t.Fatalf("row %s-%s negative spikes", row.Input, row.Hidden)
		}
		rows[row.Input+"-"+row.Hidden] = row
	}
	// The paper's most robust ordering: with a phase input, phase hidden
	// coding emits more spikes than burst hidden coding.
	if rows["phase-phase"].Spikes <= rows["phase-burst"].Spikes {
		t.Fatalf("phase-phase (%v) must out-spike phase-burst (%v)",
			rows["phase-phase"].Spikes, rows["phase-burst"].Spikes)
	}
	if !strings.Contains(res.Render(), "Table 1") {
		t.Fatal("render missing title")
	}
}

func TestFig2BurstCompositionMonotone(t *testing.T) {
	l := testLab(t)
	res, err := Fig2(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("expected 5 sweep points, got %d", len(res.Points))
	}
	// The paper's Fig. 2 claim: smaller v_th → larger share of burst
	// spikes. Tiny runs are noisy, so compare the extremes.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.VTh != 0.5 || last.VTh != 0.03125 {
		t.Fatalf("sweep order wrong: %v ... %v", first.VTh, last.VTh)
	}
	if last.PercentBurst < first.PercentBurst {
		t.Fatalf("burst share must grow as v_th shrinks: %.3f at 0.5 vs %.3f at 0.03125",
			first.PercentBurst, last.PercentBurst)
	}
	if !strings.Contains(res.Render(), "v_th") {
		t.Fatal("render missing header")
	}
}

func TestFig3TargetsOrdered(t *testing.T) {
	l := testLab(t)
	res, err := Fig3(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Targets) != 3 {
		t.Fatalf("expected 3 targets, got %d", len(res.Targets))
	}
	for i := 1; i < len(res.Targets); i++ {
		if res.Targets[i].Target >= res.Targets[i-1].Target {
			t.Fatal("targets must descend")
		}
	}
	for _, ft := range res.Targets {
		if len(ft.Cells) != 9 {
			t.Fatalf("target %.3f has %d cells", ft.Target, len(ft.Cells))
		}
	}
	// An easier target can never take longer than a harder one for the
	// same coding.
	for _, combo := range Grid() {
		var prev int = -2
		for _, ft := range res.Targets {
			for _, c := range ft.Cells {
				if c.Combo != combo.Notation() {
					continue
				}
				if prev != -2 && prev != -1 && c.Latency != -1 && c.Latency > prev {
					t.Fatalf("%s: easier target slower (%d > %d)", c.Combo, c.Latency, prev)
				}
				prev = c.Latency
			}
		}
	}
	_ = res.Render()
}

func TestFig4Curves(t *testing.T) {
	l := testLab(t)
	res, err := Fig4(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 9 {
		t.Fatalf("expected 9 curves, got %d", len(res.Curves))
	}
	for _, c := range res.Curves {
		if len(c.AccuracyAt) != l.Settings.Steps {
			t.Fatalf("%s: curve length %d", c.Combo, len(c.AccuracyAt))
		}
		sub := c.At(8)
		if len(sub) != 8 {
			t.Fatalf("At(8) returned %d points", len(sub))
		}
		if sub[len(sub)-1] != c.AccuracyAt[len(c.AccuracyAt)-1] {
			t.Fatal("subsample must end at the final accuracy")
		}
	}
	_ = res.Render()
}

func TestTable2Structure(t *testing.T) {
	l := testLab(t)
	res, err := Table2(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 3 {
		t.Fatalf("expected 3 dataset sections, got %d", len(res.Sections))
	}
	for _, sec := range res.Sections {
		baselines := 0
		for _, row := range sec.Rows {
			if row.Baseline {
				baselines++
				if row.EnergyTN != 1 || row.EnergySN != 1 {
					t.Fatalf("%s baseline energy not 1: %v/%v", sec.Dataset, row.EnergyTN, row.EnergySN)
				}
			}
			if row.EnergyTN <= 0 || row.EnergySN <= 0 {
				t.Fatalf("%s row %s has non-positive energy", sec.Dataset, row.Method)
			}
			if row.Density < 0 {
				t.Fatalf("negative density in %s", sec.Dataset)
			}
		}
		if baselines != 1 {
			t.Fatalf("%s has %d baselines", sec.Dataset, baselines)
		}
	}
	out := res.Render()
	for _, want := range []string{"digits", "textures10", "textures100", "TrueNorth"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestFig5SpreadOrdering(t *testing.T) {
	l := testLab(t)
	res, err := Fig5(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 9 {
		t.Fatalf("expected 9 points, got %d", len(res.Points))
	}
	spread := res.HiddenSpread()
	// The paper's core Fig. 5 reading: burst hidden coding adapts to the
	// input coding (large rate spread) while phase hidden coding is
	// rigid (small spread).
	if spread["burst"] <= spread["phase"] {
		t.Fatalf("burst spread (%.3f) must exceed phase spread (%.3f)",
			spread["burst"], spread["phase"])
	}
	_ = res.Render()
}

func TestSparklineAndFormatters(t *testing.T) {
	if got := sparkline([]float64{0, 1}, 0, 1); len([]rune(got)) != 2 {
		t.Fatalf("sparkline %q", got)
	}
	if sparkline(nil, 0, 1) != "" {
		t.Fatal("empty sparkline")
	}
	if flat(-1) != "n/r" || flat(7) != "7" {
		t.Fatal("flat formatter")
	}
	if fspk(-1) != "n/r" || fspk(1500) != "1.5k" || fspk(2.5e6) != "2.500M" || fspk(12) != "12" {
		t.Fatalf("fspk formatter: %s %s %s", fspk(1500), fspk(2.5e6), fspk(12))
	}
}
