package experiments

import (
	"fmt"
	"strings"
)

// Fig3Cell is one bar pair of Fig. 3: the latency and spike count a
// coding combination needs to reach a target accuracy.
type Fig3Cell struct {
	Combo   string
	Latency int     // -1 when never reached
	Spikes  float64 // -1 when never reached
}

// Fig3Target groups the grid results for one target accuracy.
type Fig3Target struct {
	Target float64
	Cells  []Fig3Cell
}

// Fig3Result reproduces Fig. 3: latency and number of spikes to reach
// three target accuracies for the coding grid.
type Fig3Result struct {
	Model   string
	DNNAcc  float64
	Targets []Fig3Target
}

// Fig3 evaluates the grid and extracts latency/spikes-to-target. The
// paper's targets sit 0.4, 0.9, and 4.6 accuracy points below the DNN;
// the same offsets are applied to the stand-in's DNN accuracy.
func Fig3(l *Lab) (*Fig3Result, error) {
	m, err := l.Model("textures10")
	if err != nil {
		return nil, err
	}
	grid, err := l.EvalGrid("textures10")
	if err != nil {
		return nil, err
	}
	offsets := []float64{0.004, 0.009, 0.046}
	out := &Fig3Result{Model: m.Name, DNNAcc: m.DNNAcc}
	for _, off := range offsets {
		target := m.DNNAcc - off
		ft := Fig3Target{Target: target}
		for _, combo := range Grid() {
			res := grid[combo.Notation()]
			ft.Cells = append(ft.Cells, Fig3Cell{
				Combo:   combo.Notation(),
				Latency: res.LatencyToTarget(target),
				Spikes:  res.SpikesToTarget(target),
			})
		}
		out.Targets = append(out.Targets, ft)
	}
	return out, nil
}

// Render prints the three target groups.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — latency and spikes to reach target accuracy on %s (DNN %.4f)\n\n", r.Model, r.DNNAcc)
	for _, ft := range r.Targets {
		fmt.Fprintf(&b, "target accuracy %.4f:\n", ft.Target)
		t := &table{header: []string{"Coding", "Latency", "# spikes"}}
		for _, c := range ft.Cells {
			t.add(c.Combo, flat(c.Latency), fspk(c.Spikes))
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}
