package experiments

import (
	"fmt"

	"burstsnn/internal/coding"
	"burstsnn/internal/core"
)

// Combo names one input-hidden coding pair of the Table 1 grid.
type Combo struct {
	Input  coding.Scheme
	Hidden coding.Scheme
}

// Notation returns the paper's "input-hidden" label.
func (c Combo) Notation() string {
	return c.Input.String() + "-" + c.Hidden.String()
}

// Grid returns the nine coding combinations of Table 1 / Figs. 3-5, in
// the paper's row order.
func Grid() []Combo {
	var out []Combo
	for _, in := range []coding.Scheme{coding.Real, coding.Rate, coding.Phase} {
		for _, hid := range []coding.Scheme{coding.Rate, coding.Phase, coding.Burst} {
			out = append(out, Combo{Input: in, Hidden: hid})
		}
	}
	return out
}

// evalKey identifies a cached evaluation run.
type evalKey struct {
	model    string
	notation string
	vth      float64
	beta     float64
	leak     float64
	steps    int
	images   int
}

// Eval runs (or returns the cached) evaluation of one hybrid coding on a
// named model. Results are cached per (model, coding, v_th, β, leak,
// budget) key, so Table 1 and Figs. 3-5 share one grid of runs.
func (l *Lab) Eval(modelName string, hybrid core.Hybrid) (*core.EvalResult, error) {
	m, err := l.Model(modelName)
	if err != nil {
		return nil, err
	}
	key := evalKey{
		model:    modelName,
		notation: hybrid.Notation(),
		vth:      hybrid.Hidden.VTh,
		beta:     hybrid.Hidden.Beta,
		leak:     hybrid.Hidden.Leak,
		steps:    l.Settings.Steps,
		images:   l.Settings.Images,
	}
	l.mu.Lock()
	if l.evals == nil {
		l.evals = map[evalKey]*core.EvalResult{}
	}
	if res, ok := l.evals[key]; ok {
		l.mu.Unlock()
		return res, nil
	}
	l.mu.Unlock()

	l.logf("evaluating %s on %s (%d steps, %d images)...\n",
		hybrid.Notation(), modelName, l.Settings.Steps, l.Settings.Images)
	res, err := core.Evaluate(m.Net, m.Set, core.EvalConfig{
		Hybrid:    hybrid,
		Steps:     l.Settings.Steps,
		MaxImages: l.Settings.Images,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: evaluating %s on %s: %w", hybrid.Notation(), modelName, err)
	}
	l.mu.Lock()
	l.evals[key] = res
	l.mu.Unlock()
	return res, nil
}

// EvalGrid evaluates all nine combinations on a model.
func (l *Lab) EvalGrid(modelName string) (map[string]*core.EvalResult, error) {
	out := map[string]*core.EvalResult{}
	for _, combo := range Grid() {
		res, err := l.Eval(modelName, core.NewHybrid(combo.Input, combo.Hidden))
		if err != nil {
			return nil, err
		}
		out[combo.Notation()] = res
	}
	return out, nil
}
