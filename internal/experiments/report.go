package experiments

import (
	"fmt"
	"strings"
)

// table renders a fixed set of rows as a GitHub-flavoured markdown table.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) String() string {
	var b strings.Builder
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2) + "|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// fnum formats a float compactly for table cells.
func fnum(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// flat formats a latency value, rendering -1 as "n/r" (not reached).
func flat(lat int) string {
	if lat < 0 {
		return "n/r"
	}
	return fmt.Sprintf("%d", lat)
}

// fspk formats a spike count, rendering negatives as "n/r".
func fspk(v float64) string {
	if v < 0 {
		return "n/r"
	}
	if v >= 1e6 {
		return fmt.Sprintf("%.3fM", v/1e6)
	}
	if v >= 1e3 {
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return fmt.Sprintf("%.0f", v)
}

// sparkline renders a numeric series as a compact unicode strip, used by
// the figure reproductions to show curve shapes in text output.
func sparkline(values []float64, lo, hi float64) string {
	if len(values) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	if hi <= lo {
		hi = lo + 1
	}
	var b strings.Builder
	for _, v := range values {
		f := (v - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		b.WriteRune(levels[int(f*float64(len(levels)-1)+0.5)])
	}
	return b.String()
}
