package experiments

import (
	"fmt"
	"strings"

	"burstsnn/internal/coding"
	"burstsnn/internal/core"
)

// Fig2Point is one v_th setting of the burst-composition sweep.
type Fig2Point struct {
	VTh          float64
	PercentBurst float64    // share of spikes that belong to a burst
	ByLength     [5]float64 // share of *bursts* with length 2,3,4,5,>5
	TotalSpikes  int
}

// Fig2Result reproduces Fig. 2: percentage of burst spikes and their
// composition by burst length as v_th varies.
type Fig2Result struct {
	Model  string
	VThs   []float64
	Points []Fig2Point
}

// Fig2VThs is the paper's sweep: 0.5, 0.25, 0.125, 0.0625, 0.03125.
func Fig2VThs() []float64 { return []float64{0.5, 0.25, 0.125, 0.0625, 0.03125} }

// Fig2 runs the sweep on the CIFAR-10 stand-in with phase input and
// burst hidden coding, recording hidden-layer spike trains.
func Fig2(l *Lab) (*Fig2Result, error) {
	m, err := l.Model("textures10")
	if err != nil {
		return nil, err
	}
	out := &Fig2Result{Model: m.Name, VThs: Fig2VThs()}
	for _, vth := range out.VThs {
		l.logf("fig2: recording burst composition at v_th=%v...\n", vth)
		pat, err := core.CollectPatterns(m.Net, m.Set, core.PatternConfig{
			Hybrid: core.NewHybrid(coding.Phase, coding.Burst).WithVTh(vth),
			Steps:  l.Settings.PatternSteps,
			Images: l.Settings.PatternImages,
			// Sample generously: burst composition needs many trains.
			SampleFrac: 0.2,
			Seed:       7,
		})
		if err != nil {
			return nil, err
		}
		pt := Fig2Point{VTh: vth, PercentBurst: pat.Bursts.PercentBurstSpikes(), TotalSpikes: pat.Bursts.TotalSpikes}
		totalBursts := 0
		for _, c := range pat.Bursts.ByLength {
			totalBursts += c
		}
		if totalBursts > 0 {
			for i, c := range pat.Bursts.ByLength {
				pt.ByLength[i] = float64(c) / float64(totalBursts)
			}
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// Render prints the sweep in the figure's layout.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 — burst spikes vs v_th on %s (phase-burst)\n\n", r.Model)
	t := &table{header: []string{"v_th", "% burst spikes", "len=2", "len=3", "len=4", "len=5", "len>5", "spikes"}}
	for _, p := range r.Points {
		t.add(fnum(p.VTh, 5), fnum(p.PercentBurst*100, 1),
			fnum(p.ByLength[0]*100, 1), fnum(p.ByLength[1]*100, 1),
			fnum(p.ByLength[2]*100, 1), fnum(p.ByLength[3]*100, 1),
			fnum(p.ByLength[4]*100, 1), fmt.Sprintf("%d", p.TotalSpikes))
	}
	b.WriteString(t.String())
	return b.String()
}
