package experiments

import (
	"fmt"
	"strings"

	"burstsnn/internal/analysis"
	"burstsnn/internal/coding"
	"burstsnn/internal/snn"
)

// Fig1Trace is one coding scheme's single-neuron behaviour: the spike
// train, the per-spike payloads (the PSP staircase of Fig. 1B), and the
// ISI histogram (Fig. 1C).
type Fig1Trace struct {
	Scheme   string
	Spikes   analysis.SpikeTrain
	Payloads []float64
	ISIH     []int
}

// Fig1Result reproduces Fig. 1: the spike train / PSP / ISIH portrait of
// rate, phase, and burst coding for a single neuron driven by a constant
// input current.
type Fig1Result struct {
	Current float64
	Steps   int
	Traces  []Fig1Trace
}

// Fig1 drives one IF neuron per hidden coding with a constant current and
// records its behaviour.
func Fig1(current float64, steps int) *Fig1Result {
	res := &Fig1Result{Current: current, Steps: steps}
	configs := []coding.Config{
		coding.DefaultConfig(coding.Rate),
		coding.DefaultConfig(coding.Phase),
		coding.DefaultConfig(coding.Burst),
	}
	for _, cfg := range configs {
		n := snn.NewSingleNeuron(cfg)
		tr := Fig1Trace{Scheme: cfg.Scheme.String()}
		for t := 0; t < steps; t++ {
			fired, payload := n.Step(current)
			if fired {
				tr.Spikes = append(tr.Spikes, t)
				tr.Payloads = append(tr.Payloads, payload)
			}
		}
		tr.ISIH = analysis.ISIH([]analysis.SpikeTrain{tr.Spikes}, 16)
		res.Traces = append(res.Traces, tr)
	}
	return res
}

// Render prints an ASCII version of the three-panel figure.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 — single IF neuron, constant input %.2f, %d steps\n\n", r.Current, r.Steps)
	for _, tr := range r.Traces {
		fmt.Fprintf(&b, "%-6s spike train: %s\n", tr.Scheme, rasterLine(tr.Spikes, r.Steps))
		psp := 0.0
		series := make([]float64, 0, len(tr.Payloads))
		for _, p := range tr.Payloads {
			psp += p
			series = append(series, psp)
		}
		maxPSP := 0.0
		if len(series) > 0 {
			maxPSP = series[len(series)-1]
		}
		fmt.Fprintf(&b, "       PSP steps  : %s (Σ=%.3f over %d spikes)\n",
			sparkline(tr.Payloads, 0, maxPayload(tr.Payloads)), maxPSP, len(tr.Spikes))
		fmt.Fprintf(&b, "       ISIH 1..16 : %s\n\n", isihLine(tr.ISIH))
	}
	return b.String()
}

func maxPayload(ps []float64) float64 {
	m := 0.0
	for _, p := range ps {
		if p > m {
			m = p
		}
	}
	return m
}

func rasterLine(train analysis.SpikeTrain, steps int) string {
	if steps > 64 {
		steps = 64
	}
	line := make([]rune, steps)
	for i := range line {
		line[i] = '·'
	}
	for _, t := range train {
		if t < steps {
			line[t] = '|'
		}
	}
	return string(line)
}

func isihLine(h []int) string {
	vals := make([]float64, len(h))
	max := 0.0
	for i, c := range h {
		vals[i] = float64(c)
		if vals[i] > max {
			max = vals[i]
		}
	}
	return sparkline(vals, 0, max)
}
