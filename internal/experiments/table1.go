package experiments

import (
	"fmt"
	"strings"

	"burstsnn/internal/core"
)

// Table1Row is one line of Table 1: a coding combination's accuracy,
// latency, and spike count on the CIFAR-10 stand-in.
type Table1Row struct {
	Input, Hidden string
	Accuracy      float64 // best accuracy over the run
	Latency       int     // first step reaching the best accuracy
	Spikes        float64 // mean spikes per image up to Latency
}

// Table1Result reproduces Table 1 (VGG-16 on CIFAR-10 → VGG-mini on
// synthetic textures).
type Table1Result struct {
	Model  string
	DNNAcc float64
	Steps  int
	Images int
	Rows   []Table1Row
}

// Table1 evaluates the full input×hidden coding grid.
func Table1(l *Lab) (*Table1Result, error) {
	m, err := l.Model("textures10")
	if err != nil {
		return nil, err
	}
	out := &Table1Result{
		Model:  m.Name,
		DNNAcc: m.DNNAcc,
		Steps:  l.Settings.Steps,
		Images: l.Settings.Images,
	}
	for _, combo := range Grid() {
		res, err := l.Eval("textures10", core.NewHybrid(combo.Input, combo.Hidden))
		if err != nil {
			return nil, err
		}
		best, at := res.BestAccuracy()
		spikes := res.SpikesPerImage * float64(at) / float64(res.Steps)
		out.Rows = append(out.Rows, Table1Row{
			Input:    combo.Input.String(),
			Hidden:   combo.Hidden.String(),
			Accuracy: best,
			Latency:  at,
			Spikes:   spikes,
		})
	}
	return out, nil
}

// Render prints the markdown table in the paper's layout.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — neural coding grid on %s (DNN accuracy %.4f, %d steps, %d images)\n\n",
		r.Model, r.DNNAcc, r.Steps, r.Images)
	t := &table{header: []string{"Input", "Hidden", "Accuracy (%)", "Latency", "# of spikes"}}
	for _, row := range r.Rows {
		t.add(row.Input, row.Hidden, fnum(row.Accuracy*100, 2), flat(row.Latency), fspk(row.Spikes))
	}
	b.WriteString(t.String())
	return b.String()
}
