package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationBeta(t *testing.T) {
	l := testLab(t)
	res, err := AblationBeta(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("expected 5 β rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Accuracy <= 0 || row.Spikes <= 0 {
			t.Fatalf("degenerate ablation row %+v", row)
		}
	}
	if !strings.Contains(res.Render(), "β=2.00") {
		t.Fatal("render missing β labels")
	}
}

func TestAblationNorm(t *testing.T) {
	l := testLab(t)
	res, err := AblationNorm(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(res.Rows))
	}
	// All normalization variants must keep the network functional.
	for _, row := range res.Rows {
		if row.Accuracy < 0.3 {
			t.Fatalf("normalization %q broke the network: %.3f", row.Label, row.Accuracy)
		}
	}
}

func TestExtensionTTFS(t *testing.T) {
	l := testLab(t)
	res, err := ExtensionTTFS(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(res.Rows))
	}
	ttfs := res.Rows[1]
	phase := res.Rows[0]
	// TTFS emits at most one input spike per pixel per period, so it must
	// use no more input spikes than phase (which may emit up to k).
	if ttfs.Spikes > phase.Spikes*1.5 {
		t.Fatalf("TTFS (%v spikes) should not out-spike phase (%v) by this much", ttfs.Spikes, phase.Spikes)
	}
}

func TestCSVExports(t *testing.T) {
	l := testLab(t)

	t1, err := Table1(l)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := t1.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 { // header + 9 rows
		t.Fatalf("table1 csv has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "input,hidden") {
		t.Fatalf("bad header %q", lines[0])
	}

	f4, err := Fig4(l)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f4.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != l.Settings.Steps+1 {
		t.Fatalf("fig4 csv has %d lines, want %d", len(lines), l.Settings.Steps+1)
	}
	if got := len(strings.Split(lines[0], ",")); got != 10 { // step + 9 combos
		t.Fatalf("fig4 csv has %d columns", got)
	}

	f2, err := Fig2(l)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f2.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.03125") {
		t.Fatal("fig2 csv missing sweep point")
	}

	f5, err := Fig5(l)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f5.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "phase-burst") {
		t.Fatal("fig5 csv missing combos")
	}

	t2, err := Table2(l)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := t2.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "textures100") {
		t.Fatal("table2 csv missing dataset")
	}
}

func TestChipEnergy(t *testing.T) {
	l := testLab(t)
	res, err := ChipEnergy(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 3 methods × 2 chips
		t.Fatalf("expected 6 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Spikes <= 0 || row.SynOps < row.Spikes || row.Total <= 0 {
			t.Fatalf("implausible row %+v", row)
		}
		if row.OffCore < 0 || row.OffCore > 1 {
			t.Fatalf("off-core fraction %v", row.OffCore)
		}
	}
	// Baselines (first method per chip) must normalize to 1.
	seen := map[string]bool{}
	for _, row := range res.Rows {
		if !seen[row.Chip] {
			seen[row.Chip] = true
			if row.NormLast != 1 {
				t.Fatalf("%s baseline norm = %v", row.Chip, row.NormLast)
			}
		}
	}
	if len(res.Placements) != 3 {
		t.Fatalf("expected 3 placement rows, got %d", len(res.Placements))
	}
	// Locality placement must beat random on hops.
	if res.Placements[0].Hops >= res.Placements[1].Hops {
		t.Fatalf("sequential (%v) must beat random (%v) on hops",
			res.Placements[0].Hops, res.Placements[1].Hops)
	}
	// Annealing must not be worse than the random start.
	if res.Placements[2].Hops > res.Placements[1].Hops*1.02 {
		t.Fatalf("annealing degraded hops: %v -> %v",
			res.Placements[1].Hops, res.Placements[2].Hops)
	}
	out := res.Render()
	if !strings.Contains(out, "TrueNorth") || !strings.Contains(out, "placement study") {
		t.Fatal("render incomplete")
	}
}

func TestExtensionLeak(t *testing.T) {
	l := testLab(t)
	res, err := ExtensionLeak(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 leak rows, got %d", len(res.Rows))
	}
	// Leak 0 is the paper's model and must be at least as accurate as
	// the strongest leak.
	if res.Rows[0].Accuracy < res.Rows[3].Accuracy-0.05 {
		t.Fatalf("pure IF (%.3f) should not trail leak=0.1 (%.3f)",
			res.Rows[0].Accuracy, res.Rows[3].Accuracy)
	}
}

// TestModelDiskCacheRoundTrip verifies that a second Lab pointed at the
// same directory loads the cached model instead of retraining, and that
// it performs identically.
func TestModelDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := QuickSettings()
	s.ModelDir = dir

	lab1 := NewLab(s)
	m1, err := lab1.Model("digits")
	if err != nil {
		t.Fatal(err)
	}
	lab2 := NewLab(s)
	m2, err := lab2.Model("digits")
	if err != nil {
		t.Fatal(err)
	}
	if m1.DNNAcc != m2.DNNAcc {
		t.Fatalf("cached model accuracy differs: %v vs %v", m1.DNNAcc, m2.DNNAcc)
	}
	if m1.Net.NumParams() != m2.Net.NumParams() {
		t.Fatal("cached model has different parameter count")
	}
}
