package experiments

import (
	"fmt"
	"strings"

	"burstsnn/internal/coding"
	"burstsnn/internal/convert"
	"burstsnn/internal/core"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Label    string
	Accuracy float64 // best accuracy over the run
	Latency  int     // first step reaching best accuracy
	Spikes   float64 // spikes per image over the full run
}

// AblationResult holds one ablation study.
type AblationResult struct {
	Name  string
	Model string
	Rows  []AblationRow
}

// Render prints the sweep.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — %s on %s\n\n", r.Name, r.Model)
	t := &table{header: []string{"Config", "Accuracy (%)", "Latency", "Spikes/image"}}
	for _, row := range r.Rows {
		t.add(row.Label, fnum(row.Accuracy*100, 2), flat(row.Latency), fspk(row.Spikes))
	}
	b.WriteString(t.String())
	return b.String()
}

// AblationBeta sweeps the burst constant β on phase-burst. Larger β
// drains big membranes in fewer spikes but with coarser payload
// granularity; β→1 degenerates toward rate-like behaviour.
func AblationBeta(l *Lab) (*AblationResult, error) {
	m, err := l.Model("textures10")
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Name: "burst constant β (phase-burst, v_th=0.125)", Model: m.Name}
	for _, beta := range []float64{1.25, 1.5, 2, 3, 4} {
		res, err := l.Eval("textures10", core.NewHybrid(coding.Phase, coding.Burst).WithBeta(beta))
		if err != nil {
			return nil, err
		}
		best, at := res.BestAccuracy()
		out.Rows = append(out.Rows, AblationRow{
			Label:    fmt.Sprintf("β=%.2f", beta),
			Accuracy: best,
			Latency:  at,
			Spikes:   res.SpikesPerImage,
		})
	}
	return out, nil
}

// AblationNorm compares weight-normalization estimators (Diehl'15 max vs
// Rueckauer'17 percentile) under real-rate coding, where normalization
// error shows up most directly.
func AblationNorm(l *Lab) (*AblationResult, error) {
	m, err := l.Model("textures10")
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Name: "weight normalization method (real-rate)", Model: m.Name}
	methods := []struct {
		label string
		norm  convert.NormMethod
		pct   float64
	}{
		{"max (Diehl'15)", convert.MaxNorm, 0},
		{"p99.9 (Rueckauer'17)", convert.PercentileNorm, 99.9},
		{"p99", convert.PercentileNorm, 99},
		{"p95", convert.PercentileNorm, 95},
	}
	for _, method := range methods {
		res, err := core.Evaluate(m.Net, m.Set, core.EvalConfig{
			Hybrid:     core.NewHybrid(coding.Real, coding.Rate),
			Steps:      l.Settings.Steps,
			MaxImages:  l.Settings.Images,
			Norm:       method.norm,
			Percentile: method.pct,
		})
		if err != nil {
			return nil, err
		}
		best, at := res.BestAccuracy()
		out.Rows = append(out.Rows, AblationRow{
			Label:    method.label,
			Accuracy: best,
			Latency:  at,
			Spikes:   res.SpikesPerImage,
		})
	}
	return out, nil
}

// ExtensionLeak sweeps the leaky-IF membrane decay on phase-burst. The
// paper's neuron is pure IF (leak 0); leak discards residual charge, so
// accuracy should degrade gracefully as it grows — quantifying how much
// the IF assumption matters.
func ExtensionLeak(l *Lab) (*AblationResult, error) {
	m, err := l.Model("textures10")
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Name: "leaky-IF extension (phase-burst)", Model: m.Name}
	for _, leak := range []float64{0, 0.01, 0.05, 0.1} {
		res, err := l.Eval("textures10", core.NewHybrid(coding.Phase, coding.Burst).WithLeak(leak))
		if err != nil {
			return nil, err
		}
		best, at := res.BestAccuracy()
		out.Rows = append(out.Rows, AblationRow{
			Label:    fmt.Sprintf("leak=%.2f", leak),
			Accuracy: best,
			Latency:  at,
			Spikes:   res.SpikesPerImage,
		})
	}
	return out, nil
}

// ExtensionTTFS evaluates the time-to-first-spike input extension (one
// spike per pixel per period) against phase input, with burst hidden
// coding — a natural "future work" direction the paper's related-work
// section motivates.
func ExtensionTTFS(l *Lab) (*AblationResult, error) {
	m, err := l.Model("textures10")
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Name: "TTFS input extension (hidden=burst)", Model: m.Name}
	for _, input := range []coding.Scheme{coding.Phase, coding.TTFS} {
		res, err := l.Eval("textures10", core.NewHybrid(input, coding.Burst))
		if err != nil {
			return nil, err
		}
		best, at := res.BestAccuracy()
		out.Rows = append(out.Rows, AblationRow{
			Label:    input.String() + "-burst",
			Accuracy: best,
			Latency:  at,
			Spikes:   res.SpikesPerImage,
		})
	}
	return out, nil
}
