package experiments

import (
	"fmt"
	"strings"

	"burstsnn/internal/coding"
	"burstsnn/internal/convert"
	"burstsnn/internal/core"
	"burstsnn/internal/neuromorphic"
)

// ChipRow is one (method, chip) cell of the topology-grounded energy
// study: the same decomposition as Table 2, but with routing costs
// measured on a placed mesh instead of estimated from density ratios.
type ChipRow struct {
	Method   string
	Chip     string
	Spikes   float64
	SynOps   float64
	Hops     float64
	OffCore  float64 // fraction of deliveries leaving the source core
	MaxLink  float64 // congestion proxy
	Cores    int
	Comp     float64
	Route    float64
	Static   float64
	Total    float64
	NormLast float64 // normalized to the first (baseline) method per chip
}

// PlacementRow compares placement strategies for one configuration.
type PlacementRow struct {
	Strategy string
	Hops     float64
	MaxLink  float64
	Route    float64
}

// ChipEnergyResult is the neuromorphic-mapping experiment: Table 2's
// energy columns grounded in mesh topology, plus a placement-quality
// study (sequential vs random vs annealed), which is where the EDA-style
// placement machinery earns its keep.
type ChipEnergyResult struct {
	Model      string
	Rows       []ChipRow
	Placements []PlacementRow
}

// ChipEnergy maps the digits model under three Table 2 methods onto
// TrueNorth- and SpiNNaker-style meshes and replays a recorded spike
// workload.
func ChipEnergy(l *Lab) (*ChipEnergyResult, error) {
	m, err := l.Model("digits")
	if err != nil {
		return nil, err
	}
	methods := []struct {
		label  string
		hybrid core.Hybrid
	}{
		{"rate-rate (Diehl'15)", core.NewHybrid(coding.Rate, coding.Rate)},
		{"phase-phase (Kim'18)", core.NewHybrid(coding.Phase, coding.Phase)},
		{"real-burst (ours)", core.NewHybrid(coding.Real, coding.Burst)},
	}

	out := &ChipEnergyResult{Model: m.Name}
	type chipSpec struct {
		name string
		mk   func(w, h int) neuromorphic.ChipConfig
	}
	chips := []chipSpec{
		{"TrueNorth", neuromorphic.TrueNorthChip},
		{"SpiNNaker", neuromorphic.SpiNNakerChip},
	}

	baseTotals := map[string]float64{}
	for _, method := range methods {
		l.logf("chip: mapping %s...\n", method.label)
		// Each method is replayed at its own operating latency — the step
		// at which it reaches its best accuracy (Table 2's latency
		// column) — so fast codings are credited for finishing early.
		eval, err := l.Eval("digits", method.hybrid)
		if err != nil {
			return nil, err
		}
		_, latency := eval.BestAccuracy()
		if latency < 8 {
			latency = 8
		}
		res, err := convert.Convert(m.Net, m.Set.Train, convert.Options{
			Input: method.hybrid.Input, Hidden: method.hybrid.Hidden,
		})
		if err != nil {
			return nil, err
		}
		topo, err := neuromorphic.ExtractTopology(res.Net)
		if err != nil {
			return nil, err
		}
		images := make([][]float64, 0, l.Settings.PatternImages)
		for i := 0; i < l.Settings.PatternImages && i < len(m.Set.Test); i++ {
			images = append(images, m.Set.Test[i].Image)
		}
		load := neuromorphic.RecordLoad(res.Net, topo, images, latency)

		for _, cs := range chips {
			chip := meshFor(cs.mk, topo.TotalNeurons())
			place, err := neuromorphic.PlaceSequential(topo, chip)
			if err != nil {
				return nil, err
			}
			rep, err := neuromorphic.Replay(place, load, chip)
			if err != nil {
				return nil, err
			}
			row := ChipRow{
				Method: method.label, Chip: cs.name,
				Spikes: rep.Spikes, SynOps: rep.SynOps, Hops: rep.Hops,
				OffCore: rep.OffCoreFraction, MaxLink: rep.MaxLinkLoad,
				Cores: rep.UsedCores,
				Comp:  rep.CompEnergy, Route: rep.RouteEnergy, Static: rep.StaticEnergy,
				Total: rep.TotalEnergy(),
			}
			if base, ok := baseTotals[cs.name]; ok {
				row.NormLast = row.Total / base
			} else {
				baseTotals[cs.name] = row.Total
				row.NormLast = 1
			}
			out.Rows = append(out.Rows, row)
		}
	}

	// Placement study on the burst configuration, TrueNorth mesh.
	res, err := convert.Convert(m.Net, m.Set.Train, convert.Options{
		Input:  coding.DefaultConfig(coding.Real),
		Hidden: coding.DefaultConfig(coding.Burst),
	})
	if err != nil {
		return nil, err
	}
	topo, err := neuromorphic.ExtractTopology(res.Net)
	if err != nil {
		return nil, err
	}
	images := [][]float64{m.Set.Test[0].Image}
	load := neuromorphic.RecordLoad(res.Net, topo, images, l.Settings.PatternSteps)
	chip := meshFor(neuromorphic.TrueNorthChip, topo.TotalNeurons())

	seq, err := neuromorphic.PlaceSequential(topo, chip)
	if err != nil {
		return nil, err
	}
	repSeq, err := neuromorphic.Replay(seq, load, chip)
	if err != nil {
		return nil, err
	}
	rnd, err := neuromorphic.PlaceRandom(topo, chip, 9)
	if err != nil {
		return nil, err
	}
	repRnd, err := neuromorphic.Replay(rnd, load, chip)
	if err != nil {
		return nil, err
	}
	neuromorphic.RefinePlacement(rnd, load.Counts, neuromorphic.AnnealOptions{Iterations: 30000, Seed: 3})
	repAnn, err := neuromorphic.Replay(rnd, load, chip)
	if err != nil {
		return nil, err
	}
	out.Placements = []PlacementRow{
		{"sequential (locality)", repSeq.Hops, repSeq.MaxLinkLoad, repSeq.RouteEnergy},
		{"random", repRnd.Hops, repRnd.MaxLinkLoad, repRnd.RouteEnergy},
		{"random + annealing", repAnn.Hops, repAnn.MaxLinkLoad, repAnn.RouteEnergy},
	}
	return out, nil
}

// meshFor returns the smallest square mesh of the given chip family that
// fits n neurons.
func meshFor(mk func(w, h int) neuromorphic.ChipConfig, n int) neuromorphic.ChipConfig {
	side := 1
	for {
		chip := mk(side, side)
		if chip.Capacity() >= n {
			return chip
		}
		side++
	}
}

// Render prints both studies.
func (r *ChipEnergyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Neuromorphic mapping — topology-grounded energy on %s\n\n", r.Model)
	t := &table{header: []string{
		"Method", "Chip", "Spikes", "SynOps", "Hops", "OffCore", "MaxLink", "Cores",
		"E(comp)", "E(route)", "E(static)", "E(norm)",
	}}
	for _, row := range r.Rows {
		t.add(row.Method, row.Chip, fspk(row.Spikes), fspk(row.SynOps), fspk(row.Hops),
			fnum(row.OffCore, 3), fspk(row.MaxLink), fmt.Sprintf("%d", row.Cores),
			fspk(row.Comp), fspk(row.Route), fspk(row.Static), fnum(row.NormLast, 3))
	}
	b.WriteString(t.String())
	b.WriteString("\nplacement study (real-burst on TrueNorth mesh):\n")
	pt := &table{header: []string{"Strategy", "Hops", "MaxLink", "E(route)"}}
	for _, row := range r.Placements {
		pt.add(row.Strategy, fspk(row.Hops), fspk(row.MaxLink), fspk(row.Route))
	}
	b.WriteString(pt.String())
	return b.String()
}
