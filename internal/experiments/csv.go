package experiments

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WriteCSV exports Fig. 4's inference curves as columns (step, one column
// per coding combination) so the figure can be replotted with any tool.
func (r *Fig4Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"step"}
	for _, c := range r.Curves {
		header = append(header, c.Combo)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for t := 0; t < r.Steps; t++ {
		row := []string{strconv.Itoa(t + 1)}
		for _, c := range r.Curves {
			row = append(row, strconv.FormatFloat(c.AccuracyAt[t], 'f', 5, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports Fig. 5's scatter points.
func (r *Fig5Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"coding", "mean_log_rate", "mean_regularity", "neurons"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		if err := cw.Write([]string{
			p.Combo,
			strconv.FormatFloat(p.MeanLogRate, 'f', 5, 64),
			strconv.FormatFloat(p.MeanRegularity, 'f', 5, 64),
			strconv.Itoa(p.Neurons),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports Fig. 2's burst-composition sweep.
func (r *Fig2Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"vth", "percent_burst", "len2", "len3", "len4", "len5", "len_gt5", "total_spikes"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		row := []string{
			strconv.FormatFloat(p.VTh, 'f', 5, 64),
			strconv.FormatFloat(p.PercentBurst, 'f', 5, 64),
		}
		for _, f := range p.ByLength {
			row = append(row, strconv.FormatFloat(f, 'f', 5, 64))
		}
		row = append(row, strconv.Itoa(p.TotalSpikes))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports Table 1's grid.
func (r *Table1Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"input", "hidden", "accuracy", "latency", "spikes"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			row.Input, row.Hidden,
			strconv.FormatFloat(row.Accuracy, 'f', 5, 64),
			strconv.Itoa(row.Latency),
			strconv.FormatFloat(row.Spikes, 'f', 1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports Table 2's comparison rows.
func (r *Table2Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"dataset", "method", "input", "hidden", "neurons", "dnn_acc",
		"snn_acc", "latency", "spikes", "density", "energy_truenorth", "energy_spinnaker",
	}); err != nil {
		return err
	}
	for _, sec := range r.Sections {
		for _, row := range sec.Rows {
			if err := cw.Write([]string{
				sec.Dataset, row.Method, row.Input, row.Hidden,
				strconv.Itoa(row.Neurons),
				strconv.FormatFloat(row.DNNAcc, 'f', 5, 64),
				strconv.FormatFloat(row.SNNAcc, 'f', 5, 64),
				strconv.Itoa(row.Latency),
				strconv.FormatFloat(row.Spikes, 'f', 1, 64),
				strconv.FormatFloat(row.Density, 'f', 6, 64),
				strconv.FormatFloat(row.EnergyTN, 'f', 4, 64),
				strconv.FormatFloat(row.EnergySN, 'f', 4, 64),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
