package experiments

import (
	"fmt"
	"strings"

	"burstsnn/internal/analysis"
	"burstsnn/internal/coding"
	"burstsnn/internal/core"
	"burstsnn/internal/energy"
)

// Table2Row is one method line of Table 2.
type Table2Row struct {
	Method        string
	Input, Hidden string
	VTh           float64
	Neurons       int
	DNNAcc        float64
	SNNAcc        float64
	Latency       int
	Spikes        float64
	Density       float64
	EnergyTN      float64 // normalized TrueNorth energy
	EnergySN      float64 // normalized SpiNNaker energy
	Baseline      bool
}

// Table2Section groups one dataset's rows.
type Table2Section struct {
	Dataset string
	Rows    []Table2Row
}

// Table2Result reproduces Table 2: the cross-method comparison on all
// three datasets with spiking density and normalized energy.
type Table2Result struct {
	Sections []Table2Section
}

// table2Method describes one comparison row: the coding configuration a
// prior method (or ours) uses.
type table2Method struct {
	label    string
	hybrid   core.Hybrid
	baseline bool // energy normalization reference for its section
}

// Table2 runs the comparison. Method rows per dataset mirror the paper:
// Diehl'15 rate-rate, Kim'18 phase-phase, Rueckauer'16 real-rate, and our
// real/phase-burst at v_th ∈ {0.125, 0.0625}.
func Table2(l *Lab) (*Table2Result, error) {
	sections := []struct {
		dataset string
		methods []table2Method
	}{
		{"digits", []table2Method{
			{"Diehl et al. 2015 (rate-rate)", core.NewHybrid(coding.Rate, coding.Rate), true},
			{"Kim et al. 2018 (phase-phase)", core.NewHybrid(coding.Phase, coding.Phase), false},
			{"Ours (real-burst, vth=0.125)", core.NewHybrid(coding.Real, coding.Burst).WithVTh(0.125), false},
		}},
		{"textures10", []table2Method{
			{"Cao et al. 2015 (rate-rate)", core.NewHybrid(coding.Rate, coding.Rate), false},
			{"Rueckauer et al. 2016 (real-rate)", core.NewHybrid(coding.Real, coding.Rate), true},
			{"Kim et al. 2018 (phase-phase)", core.NewHybrid(coding.Phase, coding.Phase), false},
			{"Ours (phase-burst, vth=0.125)", core.NewHybrid(coding.Phase, coding.Burst).WithVTh(0.125), false},
			{"Ours (phase-burst, vth=0.0625)", core.NewHybrid(coding.Phase, coding.Burst).WithVTh(0.0625), false},
		}},
		{"textures100", []table2Method{
			{"Kim et al. 2018 (phase-phase)", core.NewHybrid(coding.Phase, coding.Phase), true},
			{"Ours (phase-burst, vth=0.125)", core.NewHybrid(coding.Phase, coding.Burst).WithVTh(0.125), false},
		}},
	}

	out := &Table2Result{}
	for _, sec := range sections {
		m, err := l.Model(sec.dataset)
		if err != nil {
			return nil, err
		}
		section := Table2Section{Dataset: sec.dataset}
		var workloads []energy.Workload
		base := 0
		for i, method := range sec.methods {
			res, err := l.Eval(sec.dataset, method.hybrid)
			if err != nil {
				return nil, err
			}
			best, at := res.BestAccuracy()
			spikes := res.SpikesPerImage * float64(at) / float64(res.Steps)
			density := analysis.SpikingDensity(int(spikes+0.5), res.Neurons, at)
			section.Rows = append(section.Rows, Table2Row{
				Method:   method.label,
				Input:    method.hybrid.Input.Scheme.String(),
				Hidden:   method.hybrid.Hidden.Scheme.String(),
				VTh:      method.hybrid.Hidden.VTh,
				Neurons:  res.Neurons,
				DNNAcc:   m.DNNAcc,
				SNNAcc:   best,
				Latency:  at,
				Spikes:   spikes,
				Density:  density,
				Baseline: method.baseline,
			})
			workloads = append(workloads, energy.Workload{
				Spikes:  spikes,
				Density: density,
				Latency: float64(at),
			})
			if method.baseline {
				base = i
			}
		}
		tn, err := energy.Normalize(energy.TrueNorth(), workloads, base)
		if err != nil {
			return nil, err
		}
		sn, err := energy.Normalize(energy.SpiNNaker(), workloads, base)
		if err != nil {
			return nil, err
		}
		for i := range section.Rows {
			section.Rows[i].EnergyTN = tn[i]
			section.Rows[i].EnergySN = sn[i]
		}
		out.Sections = append(out.Sections, section)
	}
	return out, nil
}

// Render prints the full comparison table.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2 — comparison with other deep SNN methods\n")
	for _, sec := range r.Sections {
		fmt.Fprintf(&b, "\n%s:\n", sec.Dataset)
		t := &table{header: []string{
			"Method", "Input", "Hidden", "Neurons", "DNN(%)", "SNN(%)",
			"Latency", "Spikes", "Density", "E(TrueNorth)", "E(SpiNNaker)",
		}}
		for _, row := range sec.Rows {
			label := row.Method
			if row.Baseline {
				label += " *"
			}
			t.add(label, row.Input, row.Hidden,
				fmt.Sprintf("%d", row.Neurons),
				fnum(row.DNNAcc*100, 2), fnum(row.SNNAcc*100, 2),
				flat(row.Latency), fspk(row.Spikes),
				fnum(row.Density, 4), fnum(row.EnergyTN, 3), fnum(row.EnergySN, 3))
		}
		b.WriteString(t.String())
	}
	b.WriteString("\n* energy-normalization baseline for its dataset\n")
	return b.String()
}
