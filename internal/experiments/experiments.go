// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic stand-in workloads (see DESIGN.md
// for the substitution rationale and the per-experiment index).
//
// Each experiment is a function taking a *Lab and returning a typed
// result with a Render method that prints the same rows/series the paper
// reports. The Lab owns the trained baseline models and caches them on
// disk so repeated runs (CLI, benchmarks) do not retrain.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"burstsnn/internal/core"
	"burstsnn/internal/dataset"
	"burstsnn/internal/dnn"
	"burstsnn/internal/mathx"
)

// Settings scales the experiment workloads. The defaults run the full
// harness in minutes on a small CPU box; raise Steps/Images to approach
// the paper's budgets.
type Settings struct {
	// Steps is the simulation budget per image (the paper used 1,500 for
	// CIFAR-10; orderings stabilize far earlier).
	Steps int
	// Images is the number of test images evaluated per configuration.
	Images int
	// PatternSteps and PatternImages size the spike-pattern recordings
	// (Figs. 1, 2, 5).
	PatternSteps  int
	PatternImages int
	// ModelDir caches trained baseline models (default: os.TempDir()/
	// burstsnn-models). Training is deterministic, so cached and fresh
	// models are identical.
	ModelDir string
	// Tiny swaps the baseline recipes for much smaller datasets and
	// training budgets. Intended for unit tests; the resulting numbers
	// keep the orderings but not the magnitudes.
	Tiny bool
	// Log receives progress lines when non-nil.
	Log io.Writer
}

// DefaultSettings returns the harness defaults.
func DefaultSettings() Settings {
	return Settings{
		Steps:         192,
		Images:        40,
		PatternSteps:  128,
		PatternImages: 3,
		ModelDir:      filepath.Join(os.TempDir(), "burstsnn-models"),
	}
}

// QuickSettings returns a drastically reduced configuration for smoke
// tests: tiny models, short runs, and no disk cache.
func QuickSettings() Settings {
	s := DefaultSettings()
	s.Steps = 48
	s.Images = 10
	s.PatternSteps = 48
	s.PatternImages = 2
	s.Tiny = true
	s.ModelDir = ""
	return s
}

// Model is a trained baseline: the DNN, its training data, and its
// accuracy (the "DNN" column of the paper's tables).
type Model struct {
	Name   string
	Spec   dnn.Spec
	Net    *dnn.Network
	Set    *dataset.Set
	DNNAcc float64
}

// Lab owns settings plus the trained-model and evaluation caches shared
// by the experiments (Table 1, Figs. 3-5 reuse the same grid runs).
type Lab struct {
	Settings Settings

	mu     sync.Mutex
	models map[string]*Model
	evals  map[evalKey]*core.EvalResult
}

// NewLab creates a Lab.
func NewLab(s Settings) *Lab {
	return &Lab{Settings: s, models: map[string]*Model{}}
}

func (l *Lab) logf(format string, args ...any) {
	if l.Settings.Log != nil {
		fmt.Fprintf(l.Settings.Log, format, args...)
	}
}

// modelRecipe fully determines one baseline model.
type modelRecipe struct {
	name   string
	build  func() (*dataset.Set, dnn.Spec)
	lr     float64
	epochs int
	minAcc float64 // sanity floor; training below this is an error
}

// recipesFor returns the model recipes for the settings; Tiny swaps in
// reduced datasets and budgets for fast tests.
func recipesFor(s Settings) map[string]modelRecipe {
	if s.Tiny {
		return map[string]modelRecipe{
			"digits": {
				name: "digits",
				build: func() (*dataset.Set, dnn.Spec) {
					set := dataset.SynthDigits(dataset.DigitsConfig{TrainPerClass: 50, TestPerClass: 8, Noise: 0.04, Seed: 1009})
					return set, dnn.MLP(1, 28, 28, []int{48}, 10)
				},
				lr: 0.01, epochs: 12, minAcc: 0.85,
			},
			"textures10": {
				name: "textures10",
				build: func() (*dataset.Set, dnn.Spec) {
					cfg := dataset.DefaultTexturesConfig()
					cfg.TrainPerClass, cfg.TestPerClass = 40, 8
					set := dataset.SynthTextures(cfg)
					return set, dnn.LeNetMini(3, 16, 16, 10)
				},
				lr: 0.005, epochs: 4, minAcc: 0.85,
			},
			"textures100": {
				name: "textures100",
				build: func() (*dataset.Set, dnn.Spec) {
					cfg := dataset.DefaultTextures100Config()
					cfg.TrainPerClass, cfg.TestPerClass = 12, 2
					set := dataset.SynthTextures(cfg)
					return set, dnn.LeNetMini(3, 16, 16, 100)
				},
				lr: 0.005, epochs: 6, minAcc: 0.25,
			},
		}
	}
	return map[string]modelRecipe{
		// MNIST stand-in: LeNet-mini on synthetic digit glyphs (the "CNN"
		// rows of Table 2).
		"digits": {
			name: "digits",
			build: func() (*dataset.Set, dnn.Spec) {
				set := dataset.SynthDigits(dataset.DefaultDigitsConfig())
				return set, dnn.LeNetMini(1, 28, 28, 10)
			},
			lr: 0.002, epochs: 3, minAcc: 0.90,
		},
		// CIFAR-10 stand-in: VGG-mini on 10-class synthetic textures.
		"textures10": {
			name: "textures10",
			build: func() (*dataset.Set, dnn.Spec) {
				set := dataset.SynthTextures(dataset.DefaultTexturesConfig())
				return set, dnn.VGGMini(3, 16, 16, 10)
			},
			lr: 0.002, epochs: 2, minAcc: 0.90,
		},
		// CIFAR-100 stand-in: VGG-mini on 100 fine-grained texture classes.
		"textures100": {
			name: "textures100",
			build: func() (*dataset.Set, dnn.Spec) {
				set := dataset.SynthTextures(dataset.DefaultTextures100Config())
				return set, dnn.VGGMini(3, 16, 16, 100)
			},
			lr: 0.002, epochs: 4, minAcc: 0.55,
		},
	}
}

// Model returns the named trained baseline ("digits", "textures10",
// "textures100"), training it on first use and caching in memory and on
// disk.
func (l *Lab) Model(name string) (*Model, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if m, ok := l.models[name]; ok {
		return m, nil
	}
	recipe, ok := recipesFor(l.Settings)[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown model %q", name)
	}
	set, spec := recipe.build()

	m := &Model{Name: name, Spec: spec, Set: set}
	path := ""
	if l.Settings.ModelDir != "" {
		path = filepath.Join(l.Settings.ModelDir, name+".gob")
		if _, netLoaded, err := dnn.LoadModelFile(path); err == nil {
			m.Net = netLoaded
			m.DNNAcc = dnn.Evaluate(netLoaded, set.Test)
			if m.DNNAcc >= recipe.minAcc {
				l.logf("loaded cached %s model (DNN acc %.4f)\n", name, m.DNNAcc)
				l.models[name] = m
				return m, nil
			}
			// Stale or mismatched cache: retrain below.
		}
	}

	l.logf("training %s baseline (%d train images, %d epochs)...\n",
		name, len(set.Train), recipe.epochs)
	net, err := dnn.Build(spec, mathx.NewRNG(4242))
	if err != nil {
		return nil, err
	}
	dnn.Train(net, set, dnn.NewAdam(recipe.lr), dnn.TrainConfig{
		Epochs: recipe.epochs, BatchSize: 32, Seed: 99, Log: l.Settings.Log,
	})
	m.Net = net
	m.DNNAcc = dnn.Evaluate(net, set.Test)
	if m.DNNAcc < recipe.minAcc {
		return nil, fmt.Errorf("experiments: %s baseline trained to %.4f, below the %.2f floor", name, m.DNNAcc, recipe.minAcc)
	}
	if path != "" {
		if err := os.MkdirAll(l.Settings.ModelDir, 0o755); err == nil {
			if err := dnn.SaveModelFile(path, spec, net); err != nil {
				l.logf("warning: could not cache model: %v\n", err)
			}
		}
	}
	l.logf("%s baseline ready (DNN acc %.4f)\n", name, m.DNNAcc)
	l.models[name] = m
	return m, nil
}
