package experiments

import (
	"fmt"
	"strings"

	"burstsnn/internal/core"
)

// Fig5Point is one coding combination's position in the firing-rate /
// regularity plane.
type Fig5Point struct {
	Combo          string
	Hidden         string
	MeanLogRate    float64
	MeanRegularity float64
	Neurons        int
}

// Fig5Result reproduces Fig. 5: the firing-pattern scatter of the coding
// grid.
type Fig5Result struct {
	Model  string
	Points []Fig5Point
}

// Fig5 records spike patterns for every combination and reduces them to
// the (<log λ>, <κ>) plane.
func Fig5(l *Lab) (*Fig5Result, error) {
	m, err := l.Model("textures10")
	if err != nil {
		return nil, err
	}
	out := &Fig5Result{Model: m.Name}
	for _, combo := range Grid() {
		l.logf("fig5: recording %s...\n", combo.Notation())
		pat, err := core.CollectPatterns(m.Net, m.Set, core.PatternConfig{
			Hybrid:     core.NewHybrid(combo.Input, combo.Hidden),
			Steps:      l.Settings.PatternSteps,
			Images:     l.Settings.PatternImages,
			SampleFrac: 0.1, // the paper samples 10% of neurons
			Seed:       11,
		})
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, Fig5Point{
			Combo:          combo.Notation(),
			Hidden:         combo.Hidden.String(),
			MeanLogRate:    pat.Point.MeanLogRate,
			MeanRegularity: pat.Point.MeanRegularity,
			Neurons:        pat.Point.Neurons,
		})
	}
	return out, nil
}

// HiddenSpread returns, for each hidden scheme, the range (max-min) of
// mean log firing rates across input codings — the paper's "flexibility"
// reading of the scatter.
func (r *Fig5Result) HiddenSpread() map[string]float64 {
	lo := map[string]float64{}
	hi := map[string]float64{}
	for _, p := range r.Points {
		if p.Neurons == 0 {
			continue
		}
		if _, ok := lo[p.Hidden]; !ok || p.MeanLogRate < lo[p.Hidden] {
			lo[p.Hidden] = p.MeanLogRate
		}
		if _, ok := hi[p.Hidden]; !ok || p.MeanLogRate > hi[p.Hidden] {
			hi[p.Hidden] = p.MeanLogRate
		}
	}
	out := map[string]float64{}
	for k := range lo {
		out[k] = hi[k] - lo[k]
	}
	return out
}

// Render prints the scatter coordinates and the per-hidden-scheme rate
// spread.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — firing rate vs regularity on %s\n\n", r.Model)
	t := &table{header: []string{"Coding", "<log λ>", "<κ>", "neurons"}}
	for _, p := range r.Points {
		t.add(p.Combo, fnum(p.MeanLogRate, 3), fnum(p.MeanRegularity, 3), fmt.Sprintf("%d", p.Neurons))
	}
	b.WriteString(t.String())
	b.WriteString("\nfiring-rate spread across input codings (flexibility):\n")
	spread := r.HiddenSpread()
	for _, hidden := range []string{"rate", "phase", "burst"} {
		fmt.Fprintf(&b, "  hidden=%-6s spread=%.3f\n", hidden, spread[hidden])
	}
	return b.String()
}
