package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs, or 0 when fewer
// than two samples are provided.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// CV returns the coefficient of variation std/mean, the firing-regularity
// measure κ of the paper (Eq. 12). It returns 0 when the mean is zero.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Std(xs) / m
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the largest element, preferring the earliest
// index on ties. It returns -1 for an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs[1:] {
		if x > xs[best] {
			best = i + 1
		}
	}
	return best
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Histogram counts xs into nbins equal-width bins over [lo, hi). Values
// outside the range are clamped into the boundary bins so no sample is
// dropped, which matches how the paper's ISI histograms bucket long
// intervals.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	counts := make([]int, nbins)
	if nbins == 0 || hi <= lo {
		return counts
	}
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		bin := int((x - lo) / width)
		if bin < 0 {
			bin = 0
		}
		if bin >= nbins {
			bin = nbins - 1
		}
		counts[bin]++
	}
	return counts
}

// Quantize rounds x in [0,1] to the nearest multiple of 1/2^bits. It is
// the precision model used by the phase-coding input encoder, which can
// deliver exactly `bits` bits of the input value per oscillation period.
func Quantize(x float64, bits int) float64 {
	if bits <= 0 {
		return 0
	}
	levels := math.Pow(2, float64(bits))
	q := math.Round(Clamp(x, 0, 1)*levels) / levels
	return Clamp(q, 0, 1)
}
