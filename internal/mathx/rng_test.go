package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64MeanApproxHalf(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm(3, 2)
	}
	if m := Mean(xs); math.Abs(m-3) > 0.05 {
		t.Fatalf("normal mean = %v, want ~3", m)
	}
	if s := Std(xs); math.Abs(s-2) > 0.05 {
		t.Fatalf("normal std = %v, want ~2", s)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestPermProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := NewRNG(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(13)
	f1 := r.Fork()
	f2 := r.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams overlap (%d matches)", same)
	}
}

func TestBernoulliProbability(t *testing.T) {
	r := NewRNG(21)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(31)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}
