// Package mathx provides deterministic random number generation and the
// statistical primitives shared by the DNN trainer, the SNN simulator, and
// the spike-train analysis code.
//
// All randomness in the repository flows through RNG so that every
// experiment is reproducible from a single integer seed.
package mathx

import "math"

// RNG is a deterministic pseudo-random number generator based on
// splitmix64. It is small, fast, has no global state, and produces an
// identical stream on every platform, which keeps dataset generation and
// weight initialization reproducible across runs.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators constructed
// from the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Reseed rewinds the generator to the start of seed's stream in place,
// equivalent to replacing it with NewRNG(seed) but without allocating —
// per-request reseeding (e.g. the deterministic rate input encoder) sits
// on the serving hot path.
func (r *RNG) Reseed(seed uint64) { r.state = seed }

// Uint64 returns the next raw 64-bit value of the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Norm(mean, std float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + std*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place through swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent generator from the current stream. Forked
// generators let one master seed drive many subsystems without the streams
// aliasing each other.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}
