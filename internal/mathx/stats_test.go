package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestStd(t *testing.T) {
	if got := Std([]float64{2, 2, 2, 2}); got != 0 {
		t.Errorf("Std of constants = %v, want 0", got)
	}
	// Population std of {1,2,3,4} = sqrt(1.25).
	if got := Std([]float64{1, 2, 3, 4}); !almostEq(got, math.Sqrt(1.25), 1e-12) {
		t.Errorf("Std = %v", got)
	}
	if got := Std([]float64{7}); got != 0 {
		t.Errorf("Std of single sample = %v, want 0", got)
	}
}

func TestCV(t *testing.T) {
	// Regular train (constant ISI) must have κ = 0; that is the paper's
	// definition of perfectly regular firing.
	if got := CV([]float64{4, 4, 4}); got != 0 {
		t.Errorf("CV of regular ISIs = %v, want 0", got)
	}
	if got := CV(nil); got != 0 {
		t.Errorf("CV(nil) = %v, want 0", got)
	}
	xs := []float64{1, 3}
	want := Std(xs) / 2
	if got := CV(xs); !almostEq(got, want, 1e-12) {
		t.Errorf("CV = %v, want %v", got, want)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(seed uint64, p uint8) bool {
		r := NewRNG(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.Range(-10, 10)
		}
		pp := float64(p % 101)
		v := Percentile(xs, pp)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxArgMax(t *testing.T) {
	xs := []float64{3, -1, 7, 7, 2}
	if Max(xs) != 7 {
		t.Error("Max")
	}
	if Min(xs) != -1 {
		t.Error("Min")
	}
	if ArgMax(xs) != 2 {
		t.Errorf("ArgMax ties should pick first index, got %d", ArgMax(xs))
	}
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil)")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.1, 0.5, 0.9, 1.5, -0.5}
	h := Histogram(xs, 0, 1, 2)
	// 0.1,0.1,-0.5(clamped) in bin 0; 0.5, 0.9, 1.5(clamped) in bin 1.
	if h[0] != 3 || h[1] != 3 {
		t.Fatalf("Histogram = %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram dropped samples: %d != %d", total, len(xs))
	}
}

func TestHistogramConservesMassProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 100)
		for i := range xs {
			xs[i] = r.Range(-2, 2)
		}
		h := Histogram(xs, 0, 1, 10)
		total := 0
		for _, c := range h {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantize(t *testing.T) {
	// 8-bit quantization of representable values is exact.
	for _, v := range []float64{0, 0.5, 0.25, 1} {
		if got := Quantize(v, 8); got != v {
			t.Errorf("Quantize(%v, 8) = %v", v, got)
		}
	}
	// Error is bounded by half a step.
	step := 1.0 / 256
	for _, v := range []float64{0.123, 0.777, 0.999} {
		if got := Quantize(v, 8); math.Abs(got-v) > step/2+1e-12 {
			t.Errorf("Quantize(%v, 8) error too large: %v", v, got)
		}
	}
	if got := Quantize(0.7, 0); got != 0 {
		t.Errorf("Quantize with 0 bits = %v", got)
	}
	if got := Quantize(1.7, 4); got != 1 {
		t.Errorf("Quantize clamps above 1, got %v", got)
	}
}
