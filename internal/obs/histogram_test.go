package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserveBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le convention: bucket i counts v <= bounds[i], v > bounds[i-1].
	want := []uint64{2, 2, 2, 1} // {0.5,1}, {1.5,2}, {3,4}, {100}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, c, want[i], s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("Count = %d, want 7", s.Count)
	}
	if got := h.Sum(); math.Abs(got-112) > 1e-12 {
		t.Errorf("Sum = %v, want 112", got)
	}
}

func TestHistogramMergeExact(t *testing.T) {
	// Shard observations over several histograms, merge, and check the
	// merged buckets equal a single histogram fed everything.
	const shards = 4
	parts := make([]*Histogram, shards)
	for i := range parts {
		parts[i] = NewDurationHistogram()
	}
	whole := NewDurationHistogram()
	r := uint64(1)
	for i := 0; i < 10_000; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		v := 1e-6 * math.Pow(2, float64(r%1600)/100) // 1µs..~65s, log-uniform
		parts[i%shards].Observe(v)
		whole.Observe(v)
	}
	merged := NewDurationHistogram()
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatalf("Merge: %v", err)
		}
	}
	ms, ws := merged.Snapshot(), whole.Snapshot()
	if ms.Count != ws.Count {
		t.Fatalf("merged Count = %d, want %d", ms.Count, ws.Count)
	}
	for i := range ms.Counts {
		if ms.Counts[i] != ws.Counts[i] {
			t.Errorf("merged bucket %d = %d, want %d", i, ms.Counts[i], ws.Counts[i])
		}
	}
	if math.Abs(ms.Sum-ws.Sum) > 1e-9*math.Abs(ws.Sum) {
		t.Errorf("merged Sum = %v, want %v", ms.Sum, ws.Sum)
	}
}

func TestHistogramMergeLayoutMismatch(t *testing.T) {
	if err := NewDurationHistogram().Merge(NewOccupancyHistogram()); err == nil {
		t.Fatal("merging mismatched layouts succeeded")
	}
	if err := NewHistogram([]float64{1, 2}).Merge(NewHistogram([]float64{1, 3})); err == nil {
		t.Fatal("merging same-length different-bounds layouts succeeded")
	}
}

// TestHistogramQuantileVsExact pins the quantile estimate against the
// exact nearest-rank percentile on synthetic distributions: with √2-wide
// log buckets the estimate must land within one bucket of the exact
// value, i.e. within a factor of √2.
func TestHistogramQuantileVsExact(t *testing.T) {
	distributions := map[string]func(u float64) float64{
		// log-uniform over 10µs..1s
		"loguniform": func(u float64) float64 { return 1e-5 * math.Pow(1e5, u) },
		// heavily skewed: most mass at ~1ms, a 100× tail
		"skewed": func(u float64) float64 {
			if u < 0.95 {
				return 1e-3 * (1 + u)
			}
			return 1e-1 * (1 + u)
		},
		// narrow: everything inside one or two buckets
		"narrow": func(u float64) float64 { return 5e-3 + 1e-4*u },
	}
	for name, gen := range distributions {
		h := NewDurationHistogram()
		exact := make([]float64, 0, 5000)
		r := uint64(42)
		for i := 0; i < 5000; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			v := gen(float64(r%1_000_000) / 1e6)
			h.Observe(v)
			exact = append(exact, v)
		}
		sort.Float64s(exact)
		for _, p := range []float64{50, 90, 99} {
			rank := int(math.Ceil(p / 100 * float64(len(exact))))
			want := exact[rank-1]
			got := h.Quantile(p)
			if got < want/math.Sqrt2-1e-12 || got > want*math.Sqrt2+1e-12 {
				t.Errorf("%s p%v = %v, exact %v: outside one √2 bucket", name, p, got, want)
			}
		}
	}
}

// TestHistSnapshotMergeWire pins the fleet tier's wire-format merge:
// per-shard snapshots round-tripped through JSON and folded into a
// zero-value accumulator must equal the snapshot of one histogram fed
// everything — buckets, count, sum, and the quantile/mean estimates.
func TestHistSnapshotMergeWire(t *testing.T) {
	const shards = 3
	parts := make([]*Histogram, shards)
	for i := range parts {
		parts[i] = NewDurationHistogram()
	}
	whole := NewDurationHistogram()
	r := uint64(7)
	for i := 0; i < 6000; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		v := 1e-6 * math.Pow(2, float64(r%1500)/100)
		parts[i%shards].Observe(v)
		whole.Observe(v)
	}
	var merged HistSnapshot
	for _, p := range parts {
		// Round-trip through JSON: the merge must work on what a worker
		// process would actually ship.
		data, err := json.Marshal(p.Snapshot())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var s HistSnapshot
		if err := json.Unmarshal(data, &s); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if err := merged.Merge(s); err != nil {
			t.Fatalf("Merge: %v", err)
		}
	}
	ws := whole.Snapshot()
	if merged.Count != ws.Count {
		t.Fatalf("merged Count = %d, want %d", merged.Count, ws.Count)
	}
	for i := range merged.Counts {
		if merged.Counts[i] != ws.Counts[i] {
			t.Errorf("merged bucket %d = %d, want %d", i, merged.Counts[i], ws.Counts[i])
		}
	}
	if math.Abs(merged.Sum-ws.Sum) > 1e-9*math.Abs(ws.Sum) {
		t.Errorf("merged Sum = %v, want %v", merged.Sum, ws.Sum)
	}
	for _, p := range []float64{50, 90, 99} {
		if got, want := merged.Quantile(p), whole.Quantile(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("merged Quantile(%v) = %v, want %v", p, got, want)
		}
	}
	if got, want := merged.Mean(), whole.Mean(); math.Abs(got-want) > 1e-12*math.Abs(want) {
		t.Errorf("merged Mean = %v, want %v", got, want)
	}
}

func TestHistSnapshotMergeMismatch(t *testing.T) {
	a := NewDurationHistogram().Snapshot()
	if err := a.Merge(NewOccupancyHistogram().Snapshot()); err == nil {
		t.Fatal("merging mismatched snapshot layouts succeeded")
	}
	b := NewHistogram([]float64{1, 2}).Snapshot()
	if err := b.Merge(NewHistogram([]float64{1, 3}).Snapshot()); err == nil {
		t.Fatal("merging same-length different-bounds snapshots succeeded")
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewDurationHistogram()
	if got := h.Quantile(50); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	// Overflow-only: reports the highest finite bound rather than +Inf.
	h.Observe(1e9)
	top := durationBounds[len(durationBounds)-1]
	if got := h.Quantile(99); got != top {
		t.Errorf("overflow Quantile = %v, want %v", got, top)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewDurationHistogram()
	h.ObserveDuration(3 * time.Millisecond)
	if got := h.Mean(); math.Abs(got-3e-3) > 1e-12 {
		t.Errorf("Mean = %v, want 0.003", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewDurationHistogram()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1e-4 * float64(1+(w+i)%32))
				if i%100 == 0 {
					h.Snapshot()
					h.Quantile(99)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("Count = %d, want %d", got, workers*per)
	}
	s := h.Snapshot()
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != workers*per {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*per)
	}
}
