package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair.
type Label struct{ Name, Value string }

// PromWriter emits Prometheus text exposition format 0.0.4. Errors are
// sticky: the first write error is retained and subsequent calls are
// no-ops, so a handler can emit the whole page and check Err once.
type PromWriter struct {
	w   *bufio.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w)}
}

// Header emits the # HELP and # TYPE lines for a metric. typ is one of
// counter, gauge, histogram, summary, untyped.
func (p *PromWriter) Header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Metric emits one sample line: name{labels} value.
func (p *PromWriter) Metric(name string, labels []Label, value float64) {
	p.printf("%s%s %s\n", name, formatLabels(labels), formatValue(value))
}

// Histogram emits a histogram's cumulative _bucket series (including the
// mandatory le="+Inf" bucket), _sum, and _count from a snapshot. labels
// must not contain "le".
func (p *PromWriter) Histogram(name string, labels []Label, s HistSnapshot) {
	var cum uint64
	le := append(append(make([]Label, 0, len(labels)+1), labels...), Label{})
	for i, c := range s.Counts {
		cum += c
		bound := math.Inf(1)
		if i < len(s.Bounds) {
			bound = s.Bounds[i]
		}
		le[len(le)-1] = Label{"le", formatValue(bound)}
		p.printf("%s_bucket%s %d\n", name, formatLabels(le), cum)
	}
	p.printf("%s_sum%s %s\n", name, formatLabels(labels), formatValue(s.Sum))
	p.printf("%s_count%s %d\n", name, formatLabels(labels), s.Count)
}

// Flush drains the buffer and returns the first error seen.
func (p *PromWriter) Flush() error {
	if p.err == nil {
		p.err = p.w.Flush()
	}
	return p.err
}

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// ValidatePromText strictly parses a text exposition (format 0.0.4):
// every line must be blank, a well-formed # HELP / # TYPE comment, or a
// sample whose metric name, label syntax, and value parse — and every
// sample must belong to a metric family with a preceding # TYPE. It
// returns the number of sample lines. The prom golden test and the
// snnserve selftest both run scrapes through this, so an exposition bug
// fails CI rather than a fleet's scraper.
func ValidatePromText(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	typed := map[string]string{}
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		switch {
		case strings.TrimSpace(text) == "":
		case strings.HasPrefix(text, "#"):
			if err := validateComment(text, typed); err != nil {
				return samples, fmt.Errorf("line %d: %w", line, err)
			}
		default:
			if err := validateSample(text, typed); err != nil {
				return samples, fmt.Errorf("line %d: %w", line, err)
			}
			samples++
		}
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	return samples, nil
}

func validateComment(text string, typed map[string]string) error {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", text)
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", text)
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", text)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if _, dup := typed[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %q", fields[2])
		}
		typed[fields[2]] = fields[3]
	default:
		return fmt.Errorf("unknown comment keyword %q", fields[1])
	}
	return nil
}

func validateSample(text string, typed map[string]string) error {
	rest := text
	i := 0
	for i < len(rest) && isNameChar(rest[i], i == 0) {
		i++
	}
	if i == 0 {
		return fmt.Errorf("sample %q has no metric name", text)
	}
	name := rest[:i]
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := validateLabels(rest)
		if err != nil {
			return fmt.Errorf("sample %q: %w", text, err)
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("sample %q: want value [timestamp], got %q", text, rest)
	}
	if v := fields[0]; v != "+Inf" && v != "-Inf" && v != "NaN" {
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			return fmt.Errorf("sample %q: bad value %q", text, v)
		}
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("sample %q: bad timestamp %q", text, fields[1])
		}
	}
	family := name
	for _, suffix := range []string{"_bucket", "_sum", "_count", "_total"} {
		if base := strings.TrimSuffix(name, suffix); base != name {
			if _, ok := typed[base]; ok {
				family = base
				break
			}
		}
	}
	if _, ok := typed[family]; !ok {
		return fmt.Errorf("sample %q has no preceding # TYPE", text)
	}
	return nil
}

// validateLabels parses a {name="value",...} block starting at s[0]=='{'
// and returns the index just past the closing brace.
func validateLabels(s string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && isLabelChar(s[i], i == start) {
			i++
		}
		if i == start {
			return 0, fmt.Errorf("empty label name at %q", s[i:])
		}
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("label missing '=' at %q", s[start:])
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value missing opening quote at %q", s[start:])
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
				if i >= len(s) {
					return 0, fmt.Errorf("dangling escape in label value")
				}
				switch s[i] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("bad escape \\%c in label value", s[i])
				}
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	letter := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
	if first {
		return letter
	}
	return letter || c >= '0' && c <= '9'
}

func isLabelChar(c byte, first bool) bool {
	letter := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
	if first {
		return letter
	}
	return letter || c >= '0' && c <= '9'
}
