package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram with atomic buckets: Observe is
// lock-free and allocation-free (one binary search over the shared
// bounds, three atomic adds), Merge is element-wise addition for any two
// histograms built over the same bounds, and quantile estimates
// interpolate inside the located bucket, so the estimate's error is
// bounded by the bucket's width (a factor of 2^(1/2) for the duration
// layout) regardless of how many observations merged into it.
//
// Bucket i counts observations v with v <= bounds[i] and
// v > bounds[i-1]; the final bucket (index len(bounds)) is the +Inf
// overflow. This is exactly Prometheus's `le` convention, so exposition
// is a cumulative sum over the counts, no re-bucketing.
//
// Concurrent Observe/Merge/Snapshot are safe. A snapshot taken during
// concurrent observation is not a point-in-time atomic cut across
// buckets — counts may differ by the handful of in-flight observations —
// which is the standard (and Prometheus-accepted) trade for a lock-free
// record path.
type Histogram struct {
	bounds []float64 // ascending upper bounds (le); +Inf bucket implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-add
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// The bounds slice is retained (not copied) and must not be mutated:
// histograms sharing a bounds slice are mergeable by construction.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v <= %v",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// durationBounds spans 1µs..~67s at two buckets per octave (√2 growth,
// ±41% worst-case bucket resolution): 53 bounds + overflow. Shared by
// every duration histogram so stage histograms merge across models and
// stripes.
var durationBounds = func() []float64 {
	b := make([]float64, 53)
	for i := range b {
		b[i] = 1e-6 * math.Pow(2, float64(i)/2)
	}
	return b
}()

// NewDurationHistogram returns a histogram over the shared log-scale
// duration layout (1µs to ~67s upper bound, √2-spaced buckets), observed
// in seconds.
func NewDurationHistogram() *Histogram { return NewHistogram(durationBounds) }

// occupancyBounds resolves every lane count exactly up to 16 (the
// serving MaxBatch regime), then coarsens toward the 64-lane bitmask
// cap.
var occupancyBounds = func() []float64 {
	b := make([]float64, 0, 20)
	for i := 1; i <= 16; i++ {
		b = append(b, float64(i))
	}
	return append(b, 24, 32, 48, 64)
}()

// NewOccupancyHistogram returns a histogram shaped for batch lane
// occupancy: exact buckets 1..16, then 24/32/48/64 up to the lockstep
// lane cap.
func NewOccupancyHistogram() *Histogram { return NewHistogram(occupancyBounds) }

// stepErrorBounds resolves small step errors exactly (le=0 counts exact
// predictions) and doubles out to the serving step-budget scale.
var stepErrorBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

// NewStepErrorHistogram returns a histogram shaped for absolute
// step-count errors (predicted-vs-actual exit steps): the le=0 bucket
// counts exact predictions, then power-of-two bounds to 256 steps.
func NewStepErrorHistogram() *Histogram { return NewHistogram(stepErrorBounds) }

// Observe records one value. Lock-free and allocation-free.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, len(bounds) if none
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (the exposition unit).
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	if n := h.count.Load(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// Merge adds o's buckets into h. The histograms must share a bucket
// layout (identical bounds — trivially true for histograms built from
// the same New*Histogram constructor).
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("obs: merging %d-bucket histogram into %d-bucket one",
			len(o.bounds)+1, len(h.bounds)+1)
	}
	if &h.bounds[0] != &o.bounds[0] { // same backing array is the common case
		for i := range h.bounds {
			if h.bounds[i] != o.bounds[i] {
				return fmt.Errorf("obs: histogram bucket layouts differ at bound %d: %v vs %v",
					i, h.bounds[i], o.bounds[i])
			}
		}
	}
	for i := range h.counts {
		h.counts[i].Add(o.counts[i].Load())
	}
	h.count.Add(o.count.Load())
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+o.Sum())) {
			return nil
		}
	}
}

// Quantile estimates the p-th percentile (p in [0,100]) by nearest rank
// over the buckets with linear interpolation inside the located bucket.
// The estimate lands inside the bucket holding the exact nearest-rank
// value, so its error is bounded by that bucket's width. Returns 0 when
// empty; the overflow bucket reports the highest finite bound.
func (h *Histogram) Quantile(p float64) float64 {
	// Total from the buckets themselves, so rank and cumulative counts
	// are consistent even while concurrent Observes run.
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if cum+c < rank {
			cum += c
			continue
		}
		if i == len(h.bounds) { // overflow bucket: no finite upper bound
			return h.bounds[len(h.bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		frac := (float64(rank-cum) - 0.5) / float64(c)
		return lower + frac*(h.bounds[i]-lower)
	}
	return h.bounds[len(h.bounds)-1]
}

// HistSnapshot is a point-in-time bucket view for exposition: per-bucket
// (non-cumulative) counts aligned with Bounds, plus the implicit +Inf
// bucket as the final count. It is also the histogram's wire format: the
// JSON shape round-trips through encoding/json, so a worker process can
// ship its stage histograms to a fleet front tier, which merges them
// (Merge) and reads bucket-resolution estimates (Mean, Quantile) exactly
// like a live Histogram would report them.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"` // upper bounds (le); the +Inf bucket is Counts[len(Bounds)]
	Counts []uint64  `json:"counts"` // len(Bounds)+1 per-bucket counts
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Merge adds o's buckets into s. Like Histogram.Merge, the snapshots
// must share a bucket layout; a zero-value s (no bounds) adopts o's
// layout, so a merge accumulator can start empty and fold shards in.
func (s *HistSnapshot) Merge(o HistSnapshot) error {
	if len(s.Bounds) == 0 && len(s.Counts) == 0 {
		s.Bounds = append([]float64(nil), o.Bounds...)
		s.Counts = append([]uint64(nil), o.Counts...)
		s.Count, s.Sum = o.Count, o.Sum
		return nil
	}
	if len(s.Bounds) != len(o.Bounds) || len(s.Counts) != len(o.Counts) {
		return fmt.Errorf("obs: merging %d-bucket snapshot into %d-bucket one",
			len(o.Counts), len(s.Counts))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return fmt.Errorf("obs: snapshot bucket layouts differ at bound %d: %v vs %v",
				i, s.Bounds[i], o.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return nil
}

// Mean returns Sum/Count (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count > 0 {
		return s.Sum / float64(s.Count)
	}
	return 0
}

// Quantile estimates the p-th percentile over the snapshot's buckets
// with Histogram.Quantile's exact method (nearest rank, linear
// interpolation inside the located bucket), so merged per-shard
// snapshots report the same estimates a single merged Histogram would.
func (s HistSnapshot) Quantile(p float64) float64 {
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range s.Counts {
		if cum+c < rank {
			cum += c
			continue
		}
		if i == len(s.Bounds) { // overflow bucket: no finite upper bound
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		frac := (float64(rank-cum) - 0.5) / float64(c)
		return lower + frac*(s.Bounds[i]-lower)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot copies the current bucket counts.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}
