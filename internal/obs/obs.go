// Package obs is the serving observability plane: low-overhead,
// always-on telemetry primitives threaded through internal/serve.
//
// Three pieces, each independently usable:
//
//   - Histogram: fixed-bucket log-scale histograms with atomic buckets —
//     zero allocations and no locks on the record path, mergeable across
//     shards because every histogram of a layout shares the same bucket
//     bounds, and cheap to scrape (a scrape reads counters, it never
//     sorts a reservoir);
//   - Trace / Ring: per-request stage spans (queue wait, batch
//     formation, encode, simulate, readout) recorded into a lock-striped
//     ring of recent traces, with over-threshold traces pinned in a
//     bounded slowest-retained set so a tail spike survives ring
//     turnover until it is scraped;
//   - prom.go: Prometheus text-format (0.0.4) exposition helpers plus a
//     strict parser (ValidatePromText) used by both the golden tests and
//     the snnserve selftest to reject unparseable output.
//
// The stage taxonomy is the contract between the engine, the batcher,
// and every consumer (JSON /metrics, Prometheus exposition, /v1/trace):
//
//	queue    — admission + queue wait: Submit enqueue → batch execution
//	           start (includes replica-checkout wait; Form ⊂ Queue)
//	form     — batch formation: dispatcher received the batch's first
//	           request → dispatch (the max-delay collection window)
//	encode   — encoder Reset (input quantization, per-image state)
//	simulate — the lockstep/sequential step loop, excluding readout
//	readout  — readout margin / potentials extraction at exit tests
//	total    — end-to-end wall clock as observed by the server
//
// Overhead is a design constraint: recording one request is a handful of
// atomic adds and clock reads (BenchmarkObserveStages in internal/serve
// pins it), and serve.Classify's zero-allocation invariant is unchanged.
package obs

import "time"

// Stage indexes the per-request span taxonomy. The numeric values are a
// stable dense index (histogram arrays are indexed by Stage).
type Stage int

// The stage taxonomy, in request order. NumStages bounds arrays indexed
// by Stage.
const (
	StageQueue Stage = iota
	StageForm
	StageEncode
	StageSimulate
	StageReadout
	StageTotal
	NumStages
)

var stageNames = [NumStages]string{
	"queue", "form", "encode", "simulate", "readout", "total",
}

// String returns the stage's exposition name (the `stage` label value in
// Prometheus output and the key in the JSON stage map).
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// StageTimes is one request's stage breakdown as measured by the serving
// pipeline. The engine fills Encode/Simulate/Readout; the batcher adds
// Queue/Form and the execution shape (Lanes, Lockstep); the server
// derives Total from its own clock. Queue includes the formation window
// and replica-checkout wait, so Form ⊂ Queue and the spans are not
// disjoint — they answer "where did the time go" per stage, not "sum to
// total".
//
// For a lockstep microbatch the Encode/Simulate/Readout spans are the
// batch's (the lanes share one simulation); Lanes reports how many
// requests shared them, so per-request attribution divides by Lanes.
// Duplicate-fan requests (batcher dedupe) ride their representative's
// spans with their own Queue.
type StageTimes struct {
	Queue    time.Duration
	Form     time.Duration
	Encode   time.Duration
	Simulate time.Duration
	Readout  time.Duration
	// Lanes is the number of requests that shared the simulate span
	// (1 on the sequential path).
	Lanes int
	// Lockstep reports whether the request ran through the lockstep
	// batch simulator (vs the sequential engine).
	Lockstep bool
}
