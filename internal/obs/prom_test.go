package obs

import (
	"strings"
	"testing"
)

func TestPromWriterValidates(t *testing.T) {
	h := NewDurationHistogram()
	for _, v := range []float64{1e-4, 2e-3, 5e-2, 1.5} {
		h.Observe(v)
	}
	var sb strings.Builder
	pw := NewPromWriter(&sb)
	pw.Header("test_up", "Liveness.", "gauge")
	pw.Metric("test_up", nil, 1)
	pw.Header("test_requests_total", "Requests with \"quotes\", a \\ and\na newline in help.", "counter")
	pw.Metric("test_requests_total", []Label{
		{Name: "model", Value: `di"gi\ts` + "\n"},
		{Name: "kind", Value: "admission"},
	}, 42)
	pw.Header("test_duration_seconds", "Stage spans.", "histogram")
	pw.Histogram("test_duration_seconds", []Label{{Name: "stage", Value: "simulate"}}, h.Snapshot())
	if err := pw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	out := sb.String()
	samples, err := ValidatePromText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("writer output failed validation: %v\nexposition:\n%s", err, out)
	}
	// 1 gauge + 1 counter + (54 buckets + sum + count).
	if want := 2 + len(durationBounds) + 1 + 2; samples != want {
		t.Fatalf("samples = %d, want %d", samples, want)
	}
	// The histogram must end in the mandatory +Inf bucket with the total.
	if !strings.Contains(out, `le="+Inf"} 4`) {
		t.Errorf("missing cumulative +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "test_duration_seconds_count{stage=\"simulate\"} 4") {
		t.Errorf("missing _count sample:\n%s", out)
	}
}

func TestPromHistogramCumulative(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 9} {
		h.Observe(v)
	}
	var sb strings.Builder
	pw := NewPromWriter(&sb)
	pw.Header("m", "help", "histogram")
	pw.Histogram("m", nil, h.Snapshot())
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		`m_bucket{le="1"} 1`,
		`m_bucket{le="2"} 2`,
		`m_bucket{le="4"} 3`,
		`m_bucket{le="+Inf"} 4`,
		`m_sum 14`,
		`m_count 4`,
	}
	got := sb.String()
	for _, w := range want {
		if !strings.Contains(got, w+"\n") {
			t.Errorf("missing %q in:\n%s", w, got)
		}
	}
}

func TestValidatePromTextRejects(t *testing.T) {
	bad := map[string]string{
		"sample without TYPE":   "orphan_metric 1\n",
		"bad value":             "# TYPE m gauge\nm one\n",
		"unterminated labels":   "# TYPE m gauge\nm{a=\"x 1\n",
		"bad escape":            "# TYPE m gauge\nm{a=\"\\q\"} 1\n",
		"label missing equals":  "# TYPE m gauge\nm{a} 1\n",
		"unknown type":          "# TYPE m flavor\nm 1\n",
		"duplicate TYPE":        "# TYPE m gauge\n# TYPE m gauge\nm 1\n",
		"unknown comment":       "# NOPE m gauge\n",
		"bad metric name":       "# TYPE 9m gauge\n9m 1\n",
		"bad timestamp":         "# TYPE m gauge\nm 1 later\n",
		"histogram suffix only": "# TYPE other gauge\nm_bucket{le=\"1\"} 1\n",
	}
	for name, text := range bad {
		if _, err := ValidatePromText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: validated but should fail:\n%s", name, text)
		}
	}
	good := "# HELP m help text\n# TYPE m histogram\n" +
		"m_bucket{le=\"+Inf\"} 1\nm_sum 0.5\nm_count 1\n\n" +
		"# TYPE t counter\nt_total 3 1712345678\nt_total{a=\"b,c\"} NaN\n"
	samples, err := ValidatePromText(strings.NewReader(good))
	if err != nil {
		t.Fatalf("good exposition rejected: %v", err)
	}
	if samples != 5 {
		t.Fatalf("samples = %d, want 5", samples)
	}
}
