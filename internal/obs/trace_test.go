package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRingRecentOrderAndOverflow(t *testing.T) {
	r := NewRing(32, 0, 0)
	if got := r.Capacity(); got != 32 {
		t.Fatalf("Capacity = %d, want 32", got)
	}
	// Overfill by 3×: only the newest Capacity survive, newest first.
	for i := 1; i <= 96; i++ {
		r.Add(Trace{ID: fmt.Sprint(i), TotalMs: float64(i)})
	}
	got := r.Recent(0)
	if len(got) != 32 {
		t.Fatalf("Recent = %d traces, want 32", len(got))
	}
	for i, tr := range got {
		if want := fmt.Sprint(96 - i); tr.ID != want {
			t.Fatalf("Recent[%d].ID = %q, want %q", i, tr.ID, want)
		}
	}
	if got := r.Recent(5); len(got) != 5 || got[0].ID != "96" {
		t.Fatalf("Recent(5) = %d traces first %q", len(got), got[0].ID)
	}
}

func TestRingSlowPinning(t *testing.T) {
	// Threshold 100ms, room for 2 pinned traces.
	r := NewRing(8, 2, 100*time.Millisecond)
	r.Add(Trace{ID: "fast", TotalMs: 5})
	r.Add(Trace{ID: "slow1", TotalMs: 150})
	r.Add(Trace{ID: "slow2", TotalMs: 300})
	slow := r.Slow()
	if len(slow) != 2 || slow[0].ID != "slow2" || slow[1].ID != "slow1" {
		t.Fatalf("Slow = %+v, want slow2 then slow1", slow)
	}
	for _, tr := range slow {
		if !tr.Slow {
			t.Errorf("pinned trace %q not marked Slow", tr.ID)
		}
	}
	// At capacity: a slower trace evicts the fastest pinned one...
	r.Add(Trace{ID: "slow3", TotalMs: 200})
	slow = r.Slow()
	if len(slow) != 2 || slow[0].ID != "slow2" || slow[1].ID != "slow3" {
		t.Fatalf("after eviction Slow = %+v, want slow2 then slow3", slow)
	}
	// ...and a merely-over-threshold trace no slower than the pinned set
	// does not displace anything.
	r.Add(Trace{ID: "slow4", TotalMs: 120})
	if slow = r.Slow(); len(slow) != 2 || slow[1].ID != "slow3" {
		t.Fatalf("slow4 displaced a slower trace: %+v", slow)
	}
	// Ring turnover must not unpin: flood the recent ring with fast
	// traces, the slow set survives.
	for i := 0; i < 100; i++ {
		r.Add(Trace{ID: "flood", TotalMs: 1})
	}
	if slow = r.Slow(); len(slow) != 2 || slow[0].ID != "slow2" {
		t.Fatalf("slow set lost to ring turnover: %+v", slow)
	}
}

func TestRingSlowDisabled(t *testing.T) {
	r := NewRing(8, 32, 0) // threshold 0 = pinning disabled
	r.Add(Trace{ID: "x", TotalMs: 1e6})
	if slow := r.Slow(); len(slow) != 0 {
		t.Fatalf("pinning disabled but Slow = %+v", slow)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64, 8, 50*time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Add(Trace{ID: fmt.Sprintf("%d-%d", w, i), TotalMs: float64(i % 200)})
				if i%100 == 0 {
					r.Recent(16)
					r.Slow()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(r.Recent(0)); got != 64 {
		t.Fatalf("Recent after concurrent fill = %d, want 64", got)
	}
}
