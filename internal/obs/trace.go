package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one request's recorded stage breakdown, JSON-shaped for
// GET /v1/trace. Durations are milliseconds (the unit the JSON /metrics
// snapshot already speaks).
type Trace struct {
	// ID echoes ClassifyResult.RequestID, so a slow response can be
	// looked up in the ring.
	ID    string    `json:"id"`
	Model string    `json:"model"`
	Start time.Time `json:"start"`
	// TotalMs is end-to-end wall clock; the stage spans below follow the
	// package taxonomy (queue includes form and checkout wait).
	TotalMs    float64 `json:"totalMs"`
	QueueMs    float64 `json:"queueMs"`
	FormMs     float64 `json:"formMs"`
	EncodeMs   float64 `json:"encodeMs"`
	SimulateMs float64 `json:"simulateMs"`
	ReadoutMs  float64 `json:"readoutMs"`
	// Kernel names the lockstep compute plane that simulated the request
	// ("f64", "f32", "f32-sse", "f32-avx2"); empty on the sequential path.
	Kernel string `json:"kernel,omitempty"`
	// Lockstep/Lanes describe the execution shape: how the request was
	// simulated and how many batchmates shared the simulate span.
	Lockstep bool `json:"lockstep"`
	Lanes    int  `json:"lanes"`
	// Steps is the exit step (the early-exit engine's latency metric).
	Steps      int  `json:"steps"`
	EarlyExit  bool `json:"earlyExit"`
	Prediction int  `json:"prediction"`
	// Deduped marks a request served by duplicate fan-out: it rode a
	// batchmate's simulation rather than its own.
	Deduped bool `json:"deduped,omitempty"`
	// Cached marks a request answered by the cross-batch response cache:
	// it never queued, held a replica, or simulated (all stage spans but
	// the total are zero).
	Cached bool `json:"cached,omitempty"`
	// Degraded marks a request served under the degraded-mode tightened
	// exit policy (queue pressure was high at admission).
	Degraded bool `json:"degraded,omitempty"`
	// Error is set for failed requests (stage spans may be partial).
	Error string `json:"error,omitempty"`
	// Slow marks a trace at or over the ring's slow threshold; slow
	// traces are also pinned in the slowest-retained set.
	Slow bool `json:"slow,omitempty"`

	seq uint64 // recency order, assigned by Ring.Add
}

// SetTimes fills the trace's stage spans from a StageTimes and the
// end-to-end total.
func (t *Trace) SetTimes(st StageTimes, total time.Duration) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	t.TotalMs = ms(total)
	t.QueueMs = ms(st.Queue)
	t.FormMs = ms(st.Form)
	t.EncodeMs = ms(st.Encode)
	t.SimulateMs = ms(st.Simulate)
	t.ReadoutMs = ms(st.Readout)
	t.Lockstep = st.Lockstep
	t.Lanes = st.Lanes
}

// ringStripes shards Add the way serve.Metrics stripes Observe: requests
// land round-robin on independently locked stripes so concurrent adds
// almost never contend. Must be a power of two.
const ringStripes = 8

type ringStripe struct {
	mu   sync.Mutex
	buf  []Trace
	next int
	_    [40]byte // cache-line pad between neighboring stripes
}

// Ring retains the most recent traces in a lock-striped ring plus a
// bounded slowest-retained set: a trace whose total meets the slow
// threshold is pinned until slowCap even slower traces displace it, so
// tail spikes survive ring turnover between scrapes.
type Ring struct {
	stripes  []ringStripe
	tick     atomic.Uint64
	seq      atomic.Uint64
	perCap   int
	slowThr  time.Duration
	slowCap  int
	slowMu   sync.Mutex
	slowBuf  []Trace
	slowDrop uint64 // slow traces displaced by slower ones (under slowMu)
}

// NewRing builds a ring retaining ~capacity recent traces (split across
// the stripes; minimum one per stripe), pinning up to slowCap traces at
// or over slowThreshold. slowThreshold <= 0 disables pinning.
func NewRing(capacity, slowCap int, slowThreshold time.Duration) *Ring {
	per := capacity / ringStripes
	if per < 1 {
		per = 1
	}
	if slowCap < 0 {
		slowCap = 0
	}
	return &Ring{
		stripes: make([]ringStripe, ringStripes),
		perCap:  per,
		slowThr: slowThreshold,
		slowCap: slowCap,
	}
}

// Capacity returns the recent-trace retention (stripes × per-stripe).
func (r *Ring) Capacity() int { return r.perCap * len(r.stripes) }

// SlowThreshold returns the pinning threshold (0 = disabled).
func (r *Ring) SlowThreshold() time.Duration { return r.slowThr }

// Add records one trace, overwriting the stripe's oldest entry when
// full, and pins it into the slow set when at or over the threshold.
func (r *Ring) Add(t Trace) {
	t.seq = r.seq.Add(1)
	if r.slowThr > 0 && time.Duration(t.TotalMs*float64(time.Millisecond)) >= r.slowThr {
		t.Slow = true
		r.pinSlow(t)
	}
	s := &r.stripes[r.tick.Add(1)&uint64(len(r.stripes)-1)]
	s.mu.Lock()
	if len(s.buf) < r.perCap {
		s.buf = append(s.buf, t)
	} else {
		s.buf[s.next] = t
		s.next = (s.next + 1) % r.perCap
	}
	s.mu.Unlock()
}

// pinSlow keeps the slowCap slowest over-threshold traces: below
// capacity it appends; at capacity the incoming trace replaces the
// current fastest pinned trace iff it is slower.
func (r *Ring) pinSlow(t Trace) {
	if r.slowCap == 0 {
		return
	}
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	if len(r.slowBuf) < r.slowCap {
		r.slowBuf = append(r.slowBuf, t)
		return
	}
	min := 0
	for i := 1; i < len(r.slowBuf); i++ {
		if r.slowBuf[i].TotalMs < r.slowBuf[min].TotalMs {
			min = i
		}
	}
	if t.TotalMs > r.slowBuf[min].TotalMs {
		r.slowBuf[min] = t
		r.slowDrop++
	}
}

// Recent returns up to n traces, newest first.
func (r *Ring) Recent(n int) []Trace {
	all := make([]Trace, 0, r.Capacity())
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		all = append(all, s.buf...)
		s.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq > all[j].seq })
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// Slow returns the pinned slow traces, slowest first.
func (r *Ring) Slow() []Trace {
	r.slowMu.Lock()
	out := append([]Trace(nil), r.slowBuf...)
	r.slowMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].TotalMs > out[j].TotalMs })
	return out
}
