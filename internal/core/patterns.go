package core

import (
	"fmt"

	"burstsnn/internal/analysis"
	"burstsnn/internal/coding"
	"burstsnn/internal/convert"
	"burstsnn/internal/dataset"
	"burstsnn/internal/dnn"
)

// PatternConfig controls a spike-pattern collection run (the Fig. 1 ISIH,
// Fig. 2 burst composition, and Fig. 5 firing-pattern experiments).
type PatternConfig struct {
	Hybrid Hybrid
	// Steps per image; images are presented back to back on a continuous
	// time axis, approximating the paper's long-trace recording.
	Steps int
	// Images is how many test images to stream (0 = 4).
	Images int
	// SampleFrac is the fraction of neurons recorded per hidden layer
	// (the paper samples 10%).
	SampleFrac float64
	// Seed drives the neuron sampling.
	Seed uint64
}

// PatternResult aggregates the spike-pattern statistics of one coding
// configuration.
type PatternResult struct {
	Notation string
	// Point is the Fig. 5 scatter position (<log λ>, <κ>).
	Point analysis.PatternPoint
	// Bursts is the Fig. 2 burst composition over all recorded trains.
	Bursts analysis.BurstStats
	// ISIH is the Fig. 1C inter-spike-interval histogram (unit bins,
	// intervals ≥ 50 collapsed into the last bin).
	ISIH []int
	// TrainsPerLayer holds the raw recorded trains, one slice per hidden
	// spiking layer.
	TrainsPerLayer [][]analysis.SpikeTrain
}

// CollectPatterns converts net under the hybrid coding, streams test
// images through it, and records spike trains from a sampled subset of
// every hidden layer's neurons.
func CollectPatterns(net *dnn.Network, set *dataset.Set, cfg PatternConfig) (*PatternResult, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("core: Steps must be positive")
	}
	if cfg.Images <= 0 {
		cfg.Images = 4
	}
	if cfg.SampleFrac <= 0 {
		cfg.SampleFrac = 0.1
	}
	images := set.Test
	if cfg.Images < len(images) {
		images = images[:cfg.Images]
	}
	if len(images) == 0 {
		return nil, fmt.Errorf("core: no test images")
	}

	res, err := convert.Convert(net, set.Train, convert.Options{
		Input:  cfg.Hybrid.Input,
		Hidden: cfg.Hybrid.Hidden,
	})
	if err != nil {
		return nil, err
	}
	snnNet := res.Net

	// One recorder per spiking hidden layer (max-pool gates have no
	// neurons and are skipped).
	recorders := map[int]*analysis.Recorder{}
	offset := 0
	for li, l := range snnNet.Layers {
		if l.NumNeurons() == 0 {
			continue
		}
		rec := analysis.NewRecorder(l.NumNeurons(), cfg.SampleFrac, cfg.Seed+uint64(li))
		recorders[li] = rec
		li := li
		// Shift recorded times by the stream offset so ISIs are
		// continuous across image presentations.
		snnNet.AttachProbe(li, func(t int, evs []coding.Event) {
			rec.Probe(offset+t, evs)
		})
	}

	for _, s := range images {
		snnNet.Reset(s.Image)
		for t := 0; t < cfg.Steps; t++ {
			snnNet.Step(t)
		}
		offset += cfg.Steps
	}

	out := &PatternResult{Notation: cfg.Hybrid.Notation()}
	var all []analysis.SpikeTrain
	for li := 0; li < len(snnNet.Layers); li++ {
		rec, ok := recorders[li]
		if !ok {
			continue
		}
		trains := rec.Trains()
		out.TrainsPerLayer = append(out.TrainsPerLayer, trains)
		all = append(all, trains...)
	}
	out.Point = analysis.Pattern(all)
	out.Bursts = analysis.Bursts(all)
	out.ISIH = analysis.ISIH(all, 50)
	return out, nil
}
