// Package core ties the substrates together into the paper's actual
// contribution: the burst-spike neuron model and the layer-wise hybrid
// neural coding scheme, exposed as a train → convert → simulate → analyze
// pipeline.
//
// A Hybrid names an "input-hidden" coding combination (the paper's
// notation, e.g. phase-burst). Evaluate runs a converted SNN over a test
// set and produces the quantities every table and figure in the paper is
// built from: the per-time-step accuracy curve, spike counts, spiking
// density, and latency-to-target-accuracy.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"burstsnn/internal/analysis"
	"burstsnn/internal/coding"
	"burstsnn/internal/convert"
	"burstsnn/internal/dataset"
	"burstsnn/internal/dnn"
	"burstsnn/internal/snn"
)

// Hybrid is a layer-wise coding assignment: one scheme for the input
// layer, another for all hidden layers (Section 3.2).
type Hybrid struct {
	Input  coding.Config
	Hidden coding.Config
}

// NewHybrid builds a Hybrid from scheme names with default parameters.
func NewHybrid(input, hidden coding.Scheme) Hybrid {
	return Hybrid{
		Input:  coding.DefaultConfig(input),
		Hidden: coding.DefaultConfig(hidden),
	}
}

// WithVTh returns a copy with the hidden threshold constant v_th
// replaced (the Fig. 2 / Table 2 sweep parameter).
func (h Hybrid) WithVTh(vth float64) Hybrid {
	h.Hidden.VTh = vth
	return h
}

// WithBeta returns a copy with the burst constant β replaced.
func (h Hybrid) WithBeta(beta float64) Hybrid {
	h.Hidden.Beta = beta
	return h
}

// WithLeak returns a copy with the hidden-layer membrane leak set (the
// leaky-IF extension; the paper's model is pure IF, leak 0).
func (h Hybrid) WithLeak(leak float64) Hybrid {
	h.Hidden.Leak = leak
	return h
}

// Notation returns the paper's "input-hidden" label, e.g. "phase-burst".
func (h Hybrid) Notation() string {
	return h.Input.Scheme.String() + "-" + h.Hidden.Scheme.String()
}

// EvalConfig controls one SNN evaluation run.
type EvalConfig struct {
	Hybrid Hybrid
	// Steps is the simulation budget per image (the paper's 1,500 scaled
	// down; see DESIGN.md).
	Steps int
	// MaxImages caps the number of test images (0 = all).
	MaxImages int
	// Norm and Percentile select weight normalization (defaults:
	// percentile 99.9).
	Norm       convert.NormMethod
	Percentile float64
	// NormSamples caps images used for activation recording.
	NormSamples int
	// Workers bounds evaluation parallelism (0 = GOMAXPROCS).
	Workers int
}

// EvalResult aggregates an evaluation run.
type EvalResult struct {
	Notation string
	// DNNAccuracy is the source network's accuracy on the same images.
	DNNAccuracy float64
	// AccuracyAt[t] is SNN accuracy using the readout after step t.
	AccuracyAt []float64
	// Images is the number of evaluated images.
	Images int
	// SpikesPerImage is the mean total (input+hidden) spike count.
	SpikesPerImage float64
	// InputSpikesPerImage and HiddenSpikesPerImage split the total.
	InputSpikesPerImage  float64
	HiddenSpikesPerImage float64
	// Neurons is the network's total neuron count.
	Neurons int
	// Steps echoes the simulation budget.
	Steps int
}

// FinalAccuracy returns the accuracy after the last step.
func (r *EvalResult) FinalAccuracy() float64 {
	if len(r.AccuracyAt) == 0 {
		return 0
	}
	return r.AccuracyAt[len(r.AccuracyAt)-1]
}

// BestAccuracy returns the maximum accuracy over the run and the first
// step (1-based latency) at which it was reached.
func (r *EvalResult) BestAccuracy() (float64, int) {
	best, at := 0.0, 0
	for t, a := range r.AccuracyAt {
		if a > best {
			best, at = a, t+1
		}
	}
	return best, at
}

// LatencyToTarget returns the first 1-based step whose accuracy reaches
// target, or -1 if the run never does — the Fig. 3 metric.
func (r *EvalResult) LatencyToTarget(target float64) int {
	for t, a := range r.AccuracyAt {
		if a >= target {
			return t + 1
		}
	}
	return -1
}

// SpikesToTarget returns the mean cumulative spike count at the latency
// where target accuracy is reached, estimated by linear proration of the
// total spike count, or -1 if the target is never reached. (Spike
// emission is roughly uniform after the first period, so proration is a
// good estimate without storing per-step counts for every image.)
func (r *EvalResult) SpikesToTarget(target float64) float64 {
	lat := r.LatencyToTarget(target)
	if lat < 0 {
		return -1
	}
	return r.SpikesPerImage * float64(lat) / float64(r.Steps)
}

// Density returns the spiking density at full run length.
func (r *EvalResult) Density() float64 {
	return analysis.SpikingDensity(int(r.SpikesPerImage+0.5), r.Neurons, r.Steps)
}

// Evaluate converts net under the hybrid coding and measures it over the
// test split of set.
func Evaluate(net *dnn.Network, set *dataset.Set, cfg EvalConfig) (*EvalResult, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("core: Steps must be positive")
	}
	images := set.Test
	if cfg.MaxImages > 0 && cfg.MaxImages < len(images) {
		images = images[:cfg.MaxImages]
	}
	if len(images) == 0 {
		return nil, fmt.Errorf("core: no test images")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(images) {
		workers = len(images)
	}

	opts := convert.Options{
		Input:       cfg.Hybrid.Input,
		Hidden:      cfg.Hybrid.Hidden,
		Norm:        cfg.Norm,
		Percentile:  cfg.Percentile,
		NormSamples: cfg.NormSamples,
	}

	// Each worker needs a private simulator because neuron state is
	// mutable: convert once (the conversion replays NormSamples images to
	// record activation scales), then stamp out weight-sharing replicas.
	res, err := convert.Convert(net, set.Train, opts)
	if err != nil {
		return nil, err
	}
	nets := make([]*snn.Network, workers)
	nets[0] = res.Net
	for i := 1; i < workers; i++ {
		if nets[i], err = res.Net.Clone(); err != nil {
			return nil, err
		}
	}

	correctAt := make([]int, cfg.Steps)
	var mu sync.Mutex
	var wg sync.WaitGroup
	var totalSpikes, totalInput, totalHidden int64
	chunk := (len(images) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(images) {
			hi = len(images)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(net *snn.Network, samples []dataset.Sample) {
			defer wg.Done()
			localCorrect := make([]int, cfg.Steps)
			predBuf := make([]int, cfg.Steps) // reused across images
			var spikes, inSpikes, hidSpikes int64
			for _, s := range samples {
				res := net.RunInto(s.Image, cfg.Steps, predBuf)
				for t, pred := range res.PredictedAt {
					if pred == s.Label {
						localCorrect[t]++
					}
				}
				spikes += int64(res.TotalSpikes())
				inSpikes += int64(res.InputSpikes)
				hidSpikes += int64(res.HiddenSpikes)
			}
			mu.Lock()
			for t, c := range localCorrect {
				correctAt[t] += c
			}
			totalSpikes += spikes
			totalInput += inSpikes
			totalHidden += hidSpikes
			mu.Unlock()
		}(nets[w], images[lo:hi])
	}
	wg.Wait()

	n := float64(len(images))
	result := &EvalResult{
		Notation:             cfg.Hybrid.Notation(),
		DNNAccuracy:          dnn.Evaluate(net, images),
		AccuracyAt:           make([]float64, cfg.Steps),
		Images:               len(images),
		SpikesPerImage:       float64(totalSpikes) / n,
		InputSpikesPerImage:  float64(totalInput) / n,
		HiddenSpikesPerImage: float64(totalHidden) / n,
		Neurons:              nets[0].NumNeurons(),
		Steps:                cfg.Steps,
	}
	for t, c := range correctAt {
		result.AccuracyAt[t] = float64(c) / n
	}
	return result, nil
}
