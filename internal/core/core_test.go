package core

import (
	"math"
	"testing"

	"burstsnn/internal/coding"
	"burstsnn/internal/dataset"
	"burstsnn/internal/dnn"
	"burstsnn/internal/mathx"
)

// fixture trains one small digit MLP shared by the tests in this package.
var fixture struct {
	net *dnn.Network
	set *dataset.Set
	acc float64
}

func setup(t *testing.T) (*dnn.Network, *dataset.Set) {
	t.Helper()
	if fixture.net != nil {
		return fixture.net, fixture.set
	}
	set := dataset.SynthDigits(dataset.DigitsConfig{TrainPerClass: 80, TestPerClass: 6, Noise: 0.04, Seed: 55})
	net, err := dnn.Build(dnn.MLP(1, 28, 28, []int{48}, 10), mathx.NewRNG(19))
	if err != nil {
		t.Fatal(err)
	}
	dnn.Train(net, set, dnn.NewAdam(0.01), dnn.TrainConfig{Epochs: 20, BatchSize: 32, Seed: 2})
	acc := dnn.Evaluate(net, set.Test)
	if acc < 0.85 {
		t.Fatalf("fixture model too weak: %.3f", acc)
	}
	fixture.net, fixture.set, fixture.acc = net, set, acc
	return net, set
}

func TestHybridNotation(t *testing.T) {
	h := NewHybrid(coding.Phase, coding.Burst)
	if h.Notation() != "phase-burst" {
		t.Fatalf("notation %q", h.Notation())
	}
	h2 := h.WithVTh(0.0625)
	if h2.Hidden.VTh != 0.0625 || h.Hidden.VTh == 0.0625 {
		t.Fatal("WithVTh must return a modified copy")
	}
	h3 := h.WithBeta(4)
	if h3.Hidden.Beta != 4 {
		t.Fatal("WithBeta failed")
	}
}

func TestEvaluateRealRateConvergesToDNN(t *testing.T) {
	net, set := setup(t)
	res, err := Evaluate(net, set, EvalConfig{
		Hybrid: NewHybrid(coding.Real, coding.Rate),
		Steps:  80, MaxImages: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy() < res.DNNAccuracy-0.1 {
		t.Fatalf("real-rate final %.3f vs DNN %.3f", res.FinalAccuracy(), res.DNNAccuracy)
	}
	if res.SpikesPerImage <= 0 || res.Neurons <= 0 {
		t.Fatalf("missing stats: %+v", res)
	}
	if res.InputSpikesPerImage != 0 {
		t.Fatal("real input must contribute no spikes")
	}
	if res.HiddenSpikesPerImage <= 0 {
		t.Fatal("hidden spikes expected")
	}
}

func TestEvaluatePhaseBurstReachesDNN(t *testing.T) {
	net, set := setup(t)
	res, err := Evaluate(net, set, EvalConfig{
		Hybrid: NewHybrid(coding.Phase, coding.Burst),
		Steps:  80, MaxImages: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	best, at := res.BestAccuracy()
	if best < res.DNNAccuracy-0.1 {
		t.Fatalf("phase-burst best %.3f (at %d) vs DNN %.3f", best, at, res.DNNAccuracy)
	}
	if res.InputSpikesPerImage <= 0 {
		t.Fatal("phase input must emit spikes")
	}
}

func TestLatencyMetrics(t *testing.T) {
	r := &EvalResult{AccuracyAt: []float64{0.1, 0.5, 0.8, 0.8, 0.9}, SpikesPerImage: 100, Steps: 5, Neurons: 10}
	if lat := r.LatencyToTarget(0.8); lat != 3 {
		t.Fatalf("latency = %d", lat)
	}
	if lat := r.LatencyToTarget(0.95); lat != -1 {
		t.Fatalf("unreachable target latency = %d", lat)
	}
	if s := r.SpikesToTarget(0.8); math.Abs(s-60) > 1e-9 {
		t.Fatalf("spikes to target = %v", s)
	}
	if s := r.SpikesToTarget(0.99); s != -1 {
		t.Fatalf("unreachable spikes = %v", s)
	}
	best, at := r.BestAccuracy()
	if best != 0.9 || at != 5 {
		t.Fatalf("best %v at %d", best, at)
	}
	if r.FinalAccuracy() != 0.9 {
		t.Fatal("final accuracy wrong")
	}
	if d := r.Density(); math.Abs(d-100.0/(10*5)) > 1e-9 {
		t.Fatalf("density = %v", d)
	}
}

func TestEvaluateRejectsBadConfig(t *testing.T) {
	net, set := setup(t)
	if _, err := Evaluate(net, set, EvalConfig{Hybrid: NewHybrid(coding.Real, coding.Rate)}); err == nil {
		t.Fatal("zero steps accepted")
	}
	empty := &dataset.Set{Name: "empty", C: 1, H: 28, W: 28, Classes: 10, Train: set.Train}
	if _, err := Evaluate(net, empty, EvalConfig{Hybrid: NewHybrid(coding.Real, coding.Rate), Steps: 4}); err == nil {
		t.Fatal("empty test set accepted")
	}
}

func TestEvaluateDeterministicAcrossWorkerCounts(t *testing.T) {
	net, set := setup(t)
	run := func(workers int) *EvalResult {
		res, err := Evaluate(net, set, EvalConfig{
			Hybrid: NewHybrid(coding.Real, coding.Rate),
			Steps:  30, MaxImages: 12, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(4)
	if a.SpikesPerImage != b.SpikesPerImage {
		t.Fatalf("spike counts depend on worker count: %v vs %v", a.SpikesPerImage, b.SpikesPerImage)
	}
	for i := range a.AccuracyAt {
		if a.AccuracyAt[i] != b.AccuracyAt[i] {
			t.Fatal("accuracy curve depends on worker count")
		}
	}
}

func TestCollectPatternsBurstVsPhase(t *testing.T) {
	net, set := setup(t)
	burst, err := CollectPatterns(net, set, PatternConfig{
		Hybrid: NewHybrid(coding.Phase, coding.Burst),
		Steps:  60, Images: 3, SampleFrac: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	phase, err := CollectPatterns(net, set, PatternConfig{
		Hybrid: NewHybrid(coding.Phase, coding.Phase),
		Steps:  60, Images: 3, SampleFrac: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if burst.Bursts.TotalSpikes == 0 || phase.Bursts.TotalSpikes == 0 {
		t.Fatal("no spikes recorded")
	}
	// The paper's Fig. 5 claim: phase hidden coding fires at the highest
	// rate.
	if phase.Point.MeanLogRate <= burst.Point.MeanLogRate {
		t.Fatalf("phase rate %v must exceed burst rate %v",
			phase.Point.MeanLogRate, burst.Point.MeanLogRate)
	}
	if len(burst.ISIH) != 50 {
		t.Fatalf("ISIH length %d", len(burst.ISIH))
	}
	if len(burst.TrainsPerLayer) == 0 {
		t.Fatal("no per-layer trains")
	}
}

func TestCollectPatternsValidation(t *testing.T) {
	net, set := setup(t)
	if _, err := CollectPatterns(net, set, PatternConfig{Hybrid: NewHybrid(coding.Real, coding.Rate)}); err == nil {
		t.Fatal("zero steps accepted")
	}
}
