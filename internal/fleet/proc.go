package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"burstsnn/internal/serve"
)

// WorkerAddrPrefix is the stdout line a worker process prints once its
// listener is bound: "FLEET_WORKER_ADDR=<host:port>". The spawner scans
// for it to discover the ephemeral port, then health-checks the address.
const WorkerAddrPrefix = "FLEET_WORKER_ADDR="

// ProcWorker runs a shard as a child process (`snnserve -worker`) spoken
// to over its HTTP API. The process owns its replicas, caches, and
// queue; this side only translates the Worker interface onto the wire
// and maps transport failures to ErrWorkerDown so the supervisor evicts
// and respawns crashed processes.
type ProcWorker struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	client *http.Client
	down   atomic.Bool
}

// SpawnProcWorker starts bin with args, waits (up to timeout) for the
// WorkerAddrPrefix line on its stdout and a passing /healthz, and
// returns the connected worker. The child's stderr is inherited.
func SpawnProcWorker(bin string, args []string, timeout time.Duration) (*ProcWorker, error) {
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("fleet: worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("fleet: start worker: %w", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, WorkerAddrPrefix) {
				select {
				case addrCh <- strings.TrimPrefix(line, WorkerAddrPrefix):
				default:
				}
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		_, _ = io.Copy(io.Discard, stdout)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("fleet: worker did not announce %s within %v", WorkerAddrPrefix, timeout)
	}
	w := &ProcWorker{
		cmd:    cmd,
		base:   "http://" + addr,
		client: &http.Client{Timeout: 2 * time.Minute},
	}
	deadline := time.Now().Add(timeout)
	for {
		if w.Healthy() {
			return w, nil
		}
		if time.Now().After(deadline) {
			_ = w.Close()
			return nil, fmt.Errorf("fleet: worker at %s not healthy within %v", addr, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Addr returns the worker's announced listen address (host:port).
func (w *ProcWorker) Addr() string { return strings.TrimPrefix(w.base, "http://") }

// Pid returns the child's process id (the selftest kills it directly).
func (w *ProcWorker) Pid() int { return w.cmd.Process.Pid }

func (w *ProcWorker) Classify(ctx context.Context, req serve.ClassifyRequest) (serve.ClassifyResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return serve.ClassifyResult{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/v1/classify", bytes.NewReader(body))
	if err != nil {
		return serve.ClassifyResult{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return serve.ClassifyResult{}, ctx.Err()
		}
		w.down.Store(true)
		return serve.ClassifyResult{}, fmt.Errorf("%w: %v", ErrWorkerDown, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var res serve.ClassifyResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return serve.ClassifyResult{}, fmt.Errorf("fleet: worker response: %w", err)
		}
		return res, nil
	case http.StatusTooManyRequests:
		return serve.ClassifyResult{}, fmt.Errorf("%w: shard shed (Retry-After %s)",
			serve.ErrOverloaded, resp.Header.Get("Retry-After"))
	case http.StatusServiceUnavailable:
		w.down.Store(true)
		return serve.ClassifyResult{}, fmt.Errorf("%w: worker returned 503", ErrWorkerDown)
	default:
		return serve.ClassifyResult{}, fmt.Errorf("fleet: worker returned %s: %s",
			resp.Status, readErr(resp.Body))
	}
}

func (w *ProcWorker) Stats() (serve.ShardStats, error) {
	var st serve.ShardStats
	if err := w.getJSON("/metrics/shard", &st); err != nil {
		return serve.ShardStats{}, err
	}
	return st, nil
}

func (w *ProcWorker) Models() ([]serve.Info, error) {
	var out struct {
		Models []serve.Info `json:"models"`
	}
	if err := w.getJSON("/v1/models", &out); err != nil {
		return nil, err
	}
	return out.Models, nil
}

func (w *ProcWorker) RetryAfter(model string) time.Duration {
	st, err := w.Stats()
	if err != nil {
		return time.Second
	}
	if ms, ok := st.Models[model]; ok && ms.RetryAfterSec > 1 {
		return time.Duration(ms.RetryAfterSec * float64(time.Second))
	}
	return time.Second
}

func (w *ProcWorker) Resize(model string, replicas int) (int, error) {
	body, _ := json.Marshal(map[string]any{"model": model, "replicas": replicas})
	resp, err := w.client.Post(w.base+"/v1/pool", "application/json", bytes.NewReader(body))
	if err != nil {
		w.down.Store(true)
		return 0, fmt.Errorf("%w: %v", ErrWorkerDown, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("fleet: pool resize: %s: %s", resp.Status, readErr(resp.Body))
	}
	var out struct {
		Replicas int `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Replicas, nil
}

func (w *ProcWorker) Unregister(model string, evict bool) error {
	url := w.base + "/v1/models/" + model
	if evict {
		url += "?mode=evict"
	}
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		w.down.Store(true)
		return fmt.Errorf("%w: %v", ErrWorkerDown, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// Preserve the worker's unknown-model verdict across the wire so
		// the Front's status mapping matches the in-process path.
		return fmt.Errorf("fleet: unregister %s: %s: %w", model, readErr(resp.Body), serve.ErrUnknownModel)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: unregister %s: %s: %s", model, resp.Status, readErr(resp.Body))
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// Healthy probes /healthz with a short timeout; any failure (refused
// connection, slow accept, non-200) counts as unhealthy.
func (w *ProcWorker) Healthy() bool {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	ok := resp.StatusCode == http.StatusOK
	if ok {
		w.down.Store(false)
	}
	return ok && !w.down.Load()
}

// Close terminates the child: SIGTERM for a graceful drain, SIGKILL
// after 10s. Idempotent-ish: a dead child just returns its wait status.
func (w *ProcWorker) Close() error {
	if w.cmd.Process == nil {
		return nil
	}
	_ = w.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- w.cmd.Wait() }()
	select {
	case <-done:
		return nil
	case <-time.After(10 * time.Second):
		_ = w.cmd.Process.Kill()
		<-done
		return nil
	}
}

func (w *ProcWorker) getJSON(path string, v any) error {
	resp, err := w.client.Get(w.base + path)
	if err != nil {
		w.down.Store(true)
		return fmt.Errorf("%w: %v", ErrWorkerDown, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: GET %s: %s: %s", path, resp.Status, readErr(resp.Body))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func readErr(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 512))
	return strings.TrimSpace(string(b))
}
