package fleet

import (
	"io"
	"sort"
	"strconv"
	"time"

	"burstsnn/internal/obs"
	"burstsnn/internal/serve"
)

// ShardCounters is one shard's routing view in the fleet snapshot.
type ShardCounters struct {
	Shard      int   `json:"shard"`
	Live       bool  `json:"live"`
	Dispatched int64 `json:"dispatched"`
	Fallbacks  int64 `json:"fallbacks"`
	Sheds      int64 `json:"sheds"`
	DeadSkips  int64 `json:"deadSkips"`
	Respawns   int64 `json:"respawns"`
}

// FleetModelStats is one model's fleet-wide view: additive counters
// summed across shards, and stage/occupancy statistics recomputed from
// the MERGED raw histogram buckets (obs.HistSnapshot.Merge) — the same
// estimates one big histogram fed every shard's observations would
// report, which digested per-shard percentiles cannot reproduce.
type FleetModelStats struct {
	Counters  serve.Snapshot              `json:"counters"`
	Stages    map[string]serve.StageStats `json:"stages"`
	Occupancy serve.StageStats            `json:"batchOccupancy"`
	PerShard  map[string]ShardModelGauges `json:"perShard"`
}

// ShardModelGauges are the per-(shard, model) live gauges the fleet
// exposes under a shard label.
type ShardModelGauges struct {
	QueueDepth    int     `json:"queueDepth"`
	QueuePressure float64 `json:"queuePressure"`
	PoolSize      int     `json:"poolSize"`
	PoolInFlight  int     `json:"poolInFlight"`
	RetryAfterSec float64 `json:"retryAfterSec"`
	CacheHits     int64   `json:"responseCacheHits"`
}

// FleetSnapshot is the front tier's /metrics JSON.
type FleetSnapshot struct {
	UptimeSec  float64                    `json:"uptimeSec"`
	Shards     int                        `json:"shards"`
	LiveShards int                        `json:"liveShards"`
	PerShard   []ShardCounters            `json:"perShard"`
	Models     map[string]FleetModelStats `json:"models"`
}

// shardScrape is one shard's raw scrape: routing counters plus the
// worker's ShardStats (nil while the shard is down or the scrape fails).
type shardScrape struct {
	counters ShardCounters
	stats    *serve.ShardStats
}

// scrape collects every shard's counters and (for live shards) telemetry.
func (f *Fleet) scrape() []shardScrape {
	out := make([]shardScrape, f.cfg.Shards)
	for s := 0; s < f.cfg.Shards; s++ {
		c := &f.counters[s]
		w := f.Worker(s)
		out[s] = shardScrape{counters: ShardCounters{
			Shard:      s,
			Live:       w != nil,
			Dispatched: c.dispatched.Load(),
			Fallbacks:  c.fallbacks.Load(),
			Sheds:      c.sheds.Load(),
			DeadSkips:  c.deadSkips.Load(),
			Respawns:   c.respawns.Load(),
		}}
		if w == nil {
			continue
		}
		if st, err := w.Stats(); err == nil {
			out[s].stats = &st
		} else {
			out[s].counters.Live = false
		}
	}
	return out
}

// Snapshot assembles the fleet-wide metrics view.
func (f *Fleet) Snapshot() FleetSnapshot {
	return buildSnapshot(time.Since(f.start).Seconds(), f.scrape())
}

func buildSnapshot(uptime float64, scrapes []shardScrape) FleetSnapshot {
	snap := FleetSnapshot{
		UptimeSec: uptime,
		Shards:    len(scrapes),
		PerShard:  make([]ShardCounters, 0, len(scrapes)),
		Models:    map[string]FleetModelStats{},
	}
	// Raw merged buckets per (model, stage) and per-model occupancy.
	type merged struct {
		stages    map[string]*obs.HistSnapshot
		occupancy obs.HistSnapshot
	}
	merges := map[string]*merged{}
	for _, sc := range scrapes {
		snap.PerShard = append(snap.PerShard, sc.counters)
		if sc.counters.Live {
			snap.LiveShards++
		}
		if sc.stats == nil {
			continue
		}
		for name, ms := range sc.stats.Models {
			fm, ok := snap.Models[name]
			if !ok {
				fm = FleetModelStats{
					Stages:   map[string]serve.StageStats{},
					PerShard: map[string]ShardModelGauges{},
				}
				merges[name] = &merged{stages: map[string]*obs.HistSnapshot{}}
			}
			mergeCounters(&fm.Counters, ms.Counters)
			fm.PerShard[shardKey(sc.counters.Shard)] = ShardModelGauges{
				QueueDepth:    ms.Counters.QueueDepth,
				QueuePressure: ms.Pressure,
				PoolSize:      ms.PoolSize,
				PoolInFlight:  ms.Counters.PoolInFlight,
				RetryAfterSec: ms.RetryAfterSec,
				CacheHits:     ms.Counters.ResponseCacheHits,
			}
			mg := merges[name]
			for stage, hs := range ms.Stages {
				acc, ok := mg.stages[stage]
				if !ok {
					acc = &obs.HistSnapshot{}
					mg.stages[stage] = acc
				}
				_ = acc.Merge(hs) // layouts are shared by construction
			}
			_ = mg.occupancy.Merge(ms.Occupancy)
			snap.Models[name] = fm
		}
	}
	for name, fm := range snap.Models {
		mg := merges[name]
		for stage, acc := range mg.stages {
			fm.Stages[stage] = histStats(*acc, 1e3) // seconds → ms
		}
		fm.Occupancy = histStats(mg.occupancy, 1)
		// The reservoir percentiles cannot merge across shards; report the
		// merged total-stage histogram's estimates instead, so the summary
		// fields stay populated and honest (bucket-resolution error).
		if total, ok := mg.stages["total"]; ok {
			fm.Counters.P50Ms = total.Quantile(50) * 1e3
			fm.Counters.P90Ms = total.Quantile(90) * 1e3
			fm.Counters.P99Ms = total.Quantile(99) * 1e3
		}
		snap.Models[name] = fm
	}
	return snap
}

// shardKey is the shard index as the label/map key ("0", "1", ...).
func shardKey(s int) string { return strconv.Itoa(s) }

// histStats digests one merged bucket set the way serve.Snapshot digests
// a live histogram (scale converts seconds → ms where applicable).
func histStats(h obs.HistSnapshot, scale float64) serve.StageStats {
	return serve.StageStats{
		Count: h.Count,
		Mean:  h.Mean() * scale,
		P50:   h.Quantile(50) * scale,
		P90:   h.Quantile(90) * scale,
		P99:   h.Quantile(99) * scale,
	}
}

// mergeCounters adds src's additive counters (and sums the live gauges)
// into dst. Rates and means are recomputed request-weighted; the
// identity fields (kernel, scheduler) adopt the first shard's value —
// every shard registers the same models the same way.
func mergeCounters(dst *serve.Snapshot, src serve.Snapshot) {
	prevReq, addReq := dst.Requests, src.Requests
	dst.MeanSteps = weightedMean(dst.MeanSteps, prevReq, src.MeanSteps, addReq)
	dst.MeanSpikes = weightedMean(dst.MeanSpikes, prevReq, src.MeanSpikes, addReq)
	dst.Requests += src.Requests
	dst.Errors += src.Errors
	dst.AdmissionErrors += src.AdmissionErrors
	dst.SheddedRequests += src.SheddedRequests
	dst.SimulationErrors += src.SimulationErrors
	dst.EarlyExits += src.EarlyExits
	if dst.Requests > 0 {
		dst.EarlyExitRate = float64(dst.EarlyExits) / float64(dst.Requests)
	}
	dst.Batches += src.Batches
	prevB := dst.Batches - src.Batches
	dst.MeanBatchOccupancy = weightedMean(dst.MeanBatchOccupancy, prevB, src.MeanBatchOccupancy, src.Batches)
	dst.BatchStepsSaved += src.BatchStepsSaved
	dst.SchedLockstepBatches += src.SchedLockstepBatches
	dst.SchedSequentialBatches += src.SchedSequentialBatches
	if len(src.SchedReasons) > 0 {
		if dst.SchedReasons == nil {
			dst.SchedReasons = map[string]int64{}
		}
		for reason, n := range src.SchedReasons {
			dst.SchedReasons[reason] += n
		}
	}
	dst.LockstepFallbacks += src.LockstepFallbacks
	dst.ExitHistoryHits += src.ExitHistoryHits
	dst.ExitHistoryMisses += src.ExitHistoryMisses
	dst.DedupedRequests += src.DedupedRequests
	dst.EncoderCacheHits += src.EncoderCacheHits
	dst.EncoderCacheMisses += src.EncoderCacheMisses
	dst.ResponseCacheHits += src.ResponseCacheHits
	dst.ResponseCacheMisses += src.ResponseCacheMisses
	dst.DegradedRequests += src.DegradedRequests
	dst.Evictions += src.Evictions
	dst.Warms += src.Warms
	dst.FairGrants += src.FairGrants
	dst.FairWaiting += src.FairWaiting
	dst.QueueDepth += src.QueueDepth
	dst.PoolInFlight += src.PoolInFlight
	dst.PoolSize += src.PoolSize
	if dst.BatchKernel == "" {
		dst.BatchKernel = src.BatchKernel
	}
	if dst.Scheduler == "" {
		dst.Scheduler = src.Scheduler
	}
}

func weightedMean(a float64, na int64, b float64, nb int64) float64 {
	if na+nb == 0 {
		return 0
	}
	return (a*float64(na) + b*float64(nb)) / float64(na+nb)
}

// writeProm emits the fleet's Prometheus page: fleet routing counters
// and per-(shard, model) gauges under a shard label, plus the MERGED
// per-model stage and occupancy histogram families — exactly what one
// server exposing all shards' traffic would have shown. Validated by
// obs.ValidatePromText in the tests and the fleet selftest.
func (f *Fleet) writeProm(w io.Writer) error {
	return writePromScrapes(w, time.Since(f.start).Seconds(), f.scrape())
}

func writePromScrapes(w io.Writer, uptime float64, scrapes []shardScrape) error {
	pw := obs.NewPromWriter(w)

	pw.Header("burstsnn_fleet_uptime_seconds", "Fleet front-tier uptime.", "gauge")
	pw.Metric("burstsnn_fleet_uptime_seconds", nil, uptime)

	snap := buildSnapshot(uptime, scrapes)
	pw.Header("burstsnn_fleet_shards", "Configured shard count.", "gauge")
	pw.Metric("burstsnn_fleet_shards", nil, float64(snap.Shards))
	pw.Header("burstsnn_fleet_live_shards", "Shards currently serving.", "gauge")
	pw.Metric("burstsnn_fleet_live_shards", nil, float64(snap.LiveShards))

	shardCounter := func(name, help string, get func(ShardCounters) float64) {
		pw.Header(name, help, "counter")
		for _, sc := range scrapes {
			pw.Metric(name, []obs.Label{{Name: "shard", Value: shardKey(sc.counters.Shard)}},
				get(sc.counters))
		}
	}
	shardCounter("burstsnn_fleet_dispatched_total",
		"Requests answered per shard (routing view: success or request-level error).",
		func(c ShardCounters) float64 { return float64(c.Dispatched) })
	shardCounter("burstsnn_fleet_fallbacks_total",
		"Requests that arrived at this shard after their owner shed them (bounded-load fallback).",
		func(c ShardCounters) float64 { return float64(c.Fallbacks) })
	shardCounter("burstsnn_fleet_sheds_total",
		"Requests this shard shed with 429.",
		func(c ShardCounters) float64 { return float64(c.Sheds) })
	shardCounter("burstsnn_fleet_dead_skips_total",
		"Requests routed past this shard while it was down.",
		func(c ShardCounters) float64 { return float64(c.DeadSkips) })
	shardCounter("burstsnn_fleet_respawns_total",
		"Times the supervisor rebuilt this shard's worker.",
		func(c ShardCounters) float64 { return float64(c.Respawns) })

	// Stable model order for diffable scrapes.
	names := make([]string, 0, len(snap.Models))
	for name := range snap.Models {
		names = append(names, name)
	}
	sort.Strings(names)

	modelCounter := func(name, help string, get func(serve.Snapshot) float64) {
		pw.Header(name, help, "counter")
		for _, n := range names {
			pw.Metric(name, []obs.Label{{Name: "model", Value: n}},
				get(snap.Models[n].Counters))
		}
	}
	modelCounter("burstsnn_fleet_requests_total",
		"Fleet-wide successfully served classifications (summed across shards).",
		func(s serve.Snapshot) float64 { return float64(s.Requests) })
	modelCounter("burstsnn_fleet_shedded_requests_total",
		"Fleet-wide overload sheds.",
		func(s serve.Snapshot) float64 { return float64(s.SheddedRequests) })
	modelCounter("burstsnn_fleet_response_cache_hits_total",
		"Fleet-wide response-cache hits (shard affinity keeps these per-shard caches hot).",
		func(s serve.Snapshot) float64 { return float64(s.ResponseCacheHits) })
	modelCounter("burstsnn_fleet_response_cache_misses_total",
		"Fleet-wide response-cache misses.",
		func(s serve.Snapshot) float64 { return float64(s.ResponseCacheMisses) })
	modelCounter("burstsnn_fleet_early_exits_total",
		"Fleet-wide early-exited requests.",
		func(s serve.Snapshot) float64 { return float64(s.EarlyExits) })
	modelCounter("burstsnn_fleet_batches_total",
		"Fleet-wide executed lockstep microbatches.",
		func(s serve.Snapshot) float64 { return float64(s.Batches) })
	modelCounter("burstsnn_fleet_model_evictions_total",
		"Fleet-wide model evict cycles (pool released, conversion archived).",
		func(s serve.Snapshot) float64 { return float64(s.Evictions) })
	modelCounter("burstsnn_fleet_model_warms_total",
		"Fleet-wide warm cycles (model restored from the archive on demand).",
		func(s serve.Snapshot) float64 { return float64(s.Warms) })

	shardGauge := func(name, help string, get func(ShardModelGauges) float64) {
		pw.Header(name, help, "gauge")
		for _, n := range names {
			per := snap.Models[n].PerShard
			keys := make([]string, 0, len(per))
			for k := range per {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				pw.Metric(name, []obs.Label{
					{Name: "model", Value: n}, {Name: "shard", Value: k},
				}, get(per[k]))
			}
		}
	}
	shardGauge("burstsnn_fleet_queue_depth",
		"Requests waiting in the shard's admission queue right now.",
		func(g ShardModelGauges) float64 { return float64(g.QueueDepth) })
	shardGauge("burstsnn_fleet_queue_pressure",
		"Shard queue-fill EWMA (the autoscaler's control signal).",
		func(g ShardModelGauges) float64 { return g.QueuePressure })
	shardGauge("burstsnn_fleet_pool_size",
		"Shard replica-pool width (moves under autoscaling).",
		func(g ShardModelGauges) float64 { return float64(g.PoolSize) })
	shardGauge("burstsnn_fleet_pool_in_flight",
		"Shard replicas checked out right now.",
		func(g ShardModelGauges) float64 { return float64(g.PoolInFlight) })
	shardGauge("burstsnn_fleet_retry_after_seconds",
		"Shard drain-time projection (what a 429 on this shard's behalf carries).",
		func(g ShardModelGauges) float64 { return g.RetryAfterSec })

	// Merged histogram families: re-merge the raw buckets here (the
	// snapshot digested them to quantiles already).
	type mergedHists struct {
		stages    map[string]*obs.HistSnapshot
		occupancy map[string]*obs.HistSnapshot // per shard key
	}
	hm := map[string]*mergedHists{}
	for _, sc := range scrapes {
		if sc.stats == nil {
			continue
		}
		for name, ms := range sc.stats.Models {
			m, ok := hm[name]
			if !ok {
				m = &mergedHists{stages: map[string]*obs.HistSnapshot{}, occupancy: map[string]*obs.HistSnapshot{}}
				hm[name] = m
			}
			for stage, hs := range ms.Stages {
				acc, ok := m.stages[stage]
				if !ok {
					acc = &obs.HistSnapshot{}
					m.stages[stage] = acc
				}
				_ = acc.Merge(hs)
			}
			occ := ms.Occupancy
			m.occupancy[shardKey(sc.counters.Shard)] = &occ
		}
	}
	pw.Header("burstsnn_fleet_stage_duration_seconds",
		"Per-request stage spans merged across shards (bucket-exact: per-shard histograms share a layout).",
		"histogram")
	for _, n := range names {
		m := hm[n]
		if m == nil {
			continue
		}
		stages := make([]string, 0, len(m.stages))
		for stage := range m.stages {
			stages = append(stages, stage)
		}
		sort.Strings(stages)
		for _, stage := range stages {
			pw.Histogram("burstsnn_fleet_stage_duration_seconds", []obs.Label{
				{Name: "model", Value: n}, {Name: "stage", Value: stage},
			}, *m.stages[stage])
		}
	}
	pw.Header("burstsnn_fleet_batch_occupancy",
		"Lane occupancy of executed lockstep microbatches, per shard.",
		"histogram")
	for _, n := range names {
		m := hm[n]
		if m == nil {
			continue
		}
		keys := make([]string, 0, len(m.occupancy))
		for k := range m.occupancy {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			pw.Histogram("burstsnn_fleet_batch_occupancy", []obs.Label{
				{Name: "model", Value: n}, {Name: "shard", Value: k},
			}, *m.occupancy[k])
		}
	}
	return pw.Flush()
}
