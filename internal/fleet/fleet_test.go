package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"burstsnn/internal/coding"
	"burstsnn/internal/core"
	"burstsnn/internal/dataset"
	"burstsnn/internal/dnn"
	"burstsnn/internal/mathx"
	"burstsnn/internal/obs"
	"burstsnn/internal/serve"
)

// ---- shared tiny model (trained once per binary) ----

var (
	testOnce sync.Once
	testNet  *dnn.Network
	testSet  *dataset.Set
)

func testModel(t *testing.T) (*dnn.Network, *dataset.Set) {
	t.Helper()
	testOnce.Do(func() {
		set := dataset.SynthDigits(dataset.DigitsConfig{
			TrainPerClass: 30, TestPerClass: 5, Noise: 0.04, Seed: 1009,
		})
		net, err := dnn.Build(dnn.MLP(1, 28, 28, []int{32}, 10), mathx.NewRNG(7))
		if err != nil {
			panic(err)
		}
		dnn.Train(net, set, dnn.NewAdam(0.01), dnn.TrainConfig{
			Epochs: 8, BatchSize: 32, Seed: 5,
		})
		testNet, testSet = net, set
	})
	return testNet, testSet
}

const testSteps = 96

// newShardServer builds one shard's serve.Server with the shared model
// registered. Every shard gets the identical configuration, so results
// are shard-independent (the invariance the fleet relies on).
func newShardServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	net, set := testModel(t)
	s := serve.New(cfg)
	_, err := s.Register(serve.ModelConfig{
		Name:        "digits",
		Hybrid:      core.NewHybrid(coding.Phase, coding.Burst),
		Steps:       testSteps,
		Replicas:    1,
		MaxReplicas: 2,
		NormSamples: 32,
	}, net, set.Train)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	return s
}

// inprocFactory builds real in-process shard workers.
func inprocFactory(t *testing.T, cfg serve.Config) WorkerFactory {
	return func(shard int) (Worker, error) {
		return NewInprocWorker(newShardServer(t, cfg)), nil
	}
}

// testImage returns a deterministic image for an index.
func testImage(idx int) []float64 {
	rng := mathx.NewRNG(uint64(idx)*2654435761 + 17)
	img := make([]float64, 28*28)
	for i := range img {
		img[i] = rng.Float64()
	}
	return img
}

// imageOwnedBy finds a test image whose hash lands on the given shard.
func imageOwnedBy(ring *Ring, shard int) []float64 {
	for i := 0; ; i++ {
		img := testImage(i)
		if ring.Owner(coding.HashImage(img)) == shard {
			return img
		}
	}
}

// ---- fake workers (routing-plane tests without simulation cost) ----

// fakeWorker counts what lands on it and fails on demand.
type fakeWorker struct {
	shard int
	shed  atomic.Bool // every Classify sheds (serve.ErrOverloaded)
	down  atomic.Bool // every Classify fails dead (ErrWorkerDown)
	retry time.Duration

	mu     sync.Mutex
	hashes []uint64 // image hashes answered, in arrival order
}

func (w *fakeWorker) Classify(_ context.Context, req serve.ClassifyRequest) (serve.ClassifyResult, error) {
	if w.down.Load() {
		return serve.ClassifyResult{}, ErrWorkerDown
	}
	if w.shed.Load() {
		return serve.ClassifyResult{}, serve.ErrOverloaded
	}
	h := coding.HashImage(req.Image)
	w.mu.Lock()
	w.hashes = append(w.hashes, h)
	w.mu.Unlock()
	return serve.ClassifyResult{Model: req.Model, Prediction: int(h % 10)}, nil
}

func (w *fakeWorker) served() []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]uint64(nil), w.hashes...)
}

func (w *fakeWorker) Stats() (serve.ShardStats, error) {
	if w.down.Load() {
		return serve.ShardStats{}, ErrWorkerDown
	}
	return serve.ShardStats{}, nil
}
func (w *fakeWorker) Models() ([]serve.Info, error) {
	return []serve.Info{{Name: "digits"}}, nil
}
func (w *fakeWorker) RetryAfter(string) time.Duration     { return w.retry }
func (w *fakeWorker) Resize(_ string, n int) (int, error) { return n, nil }
func (w *fakeWorker) Unregister(string, bool) error       { return nil }
func (w *fakeWorker) Healthy() bool                       { return !w.down.Load() }
func (w *fakeWorker) Close() error                        { return nil }

// fakeFleet builds a fleet over fake workers with supervision disabled
// (tests flip worker state directly and check routing, not repair).
func fakeFleet(t *testing.T, shards int, cfg Config) (*Fleet, []*fakeWorker) {
	t.Helper()
	fakes := make([]*fakeWorker, shards)
	cfg.Shards = shards
	cfg.HealthInterval = -1
	f, err := New(cfg, func(s int) (Worker, error) {
		fakes[s] = &fakeWorker{shard: s, retry: time.Duration(s+1) * time.Second}
		return fakes[s], nil
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = f.Close() })
	return f, fakes
}

// ---- tests ----

// TestFleetRoutingAffinity pins the front tier's core property: every
// request lands on its image hash's ring owner, and replays of the same
// image land on the same shard (per-shard caches stay hot).
func TestFleetRoutingAffinity(t *testing.T) {
	f, fakes := fakeFleet(t, 4, Config{})
	ctx := context.Background()
	const n = 200
	for i := 0; i < n; i++ {
		img := testImage(i)
		if _, err := f.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: img}); err != nil {
			t.Fatalf("Classify(%d): %v", i, err)
		}
		owner := f.Owner(coding.HashImage(img))
		got := fakes[owner].served()
		if len(got) == 0 || got[len(got)-1] != coding.HashImage(img) {
			t.Fatalf("image %d: owner shard %d did not serve it", i, owner)
		}
	}
	// Replay: same image, same shard, no drift.
	img := testImage(3)
	owner := f.Owner(coding.HashImage(img))
	before := len(fakes[owner].served())
	for i := 0; i < 5; i++ {
		if _, err := f.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: img}); err != nil {
			t.Fatalf("replay: %v", err)
		}
	}
	if got := len(fakes[owner].served()) - before; got != 5 {
		t.Errorf("replays on owner = %d, want 5", got)
	}
	snap := f.Snapshot()
	var dispatched int64
	for _, sc := range snap.PerShard {
		dispatched += sc.Dispatched
	}
	if dispatched != n+5 {
		t.Errorf("total dispatched = %d, want %d", dispatched, n+5)
	}
}

// TestFleetFallback covers bounded-load fallback: an overloaded owner
// hands the request to the next shard clockwise, the hop budget caps how
// far it travels, and a FallbackHops<0 config pins requests to their
// owner.
func TestFleetFallback(t *testing.T) {
	f, fakes := fakeFleet(t, 3, Config{FallbackHops: 1})
	ctx := context.Background()
	img := imageOwnedBy(f.ring, 0)
	hash := coding.HashImage(img)
	next := f.ring.Sequence(hash, 3)[1]

	fakes[0].shed.Store(true)
	res, err := f.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: img})
	if err != nil {
		t.Fatalf("fallback Classify: %v", err)
	}
	if res.Prediction != int(hash%10) {
		t.Errorf("fallback returned a different answer: %d", res.Prediction)
	}
	if got := fakes[next].served(); len(got) != 1 || got[0] != hash {
		t.Errorf("fallback shard %d served %v, want [%d]", next, got, hash)
	}
	snap := f.Snapshot()
	if snap.PerShard[0].Sheds != 1 {
		t.Errorf("owner sheds = %d, want 1", snap.PerShard[0].Sheds)
	}
	if snap.PerShard[next].Fallbacks != 1 {
		t.Errorf("fallback counter = %d, want 1", snap.PerShard[next].Fallbacks)
	}

	// Both owner and fallback overloaded: the hop budget (1) is spent, the
	// request sheds with the owner's error even though shard 3 is idle.
	fakes[next].shed.Store(true)
	if _, err := f.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: img}); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("exhausted hops: got %v, want ErrOverloaded", err)
	}

	_ = f.Close()

	// Pinned mode: no fallback at all.
	fp, pfakes := fakeFleet(t, 3, Config{FallbackHops: -1})
	pimg := imageOwnedBy(fp.ring, 0)
	pfakes[0].shed.Store(true)
	if _, err := fp.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: pimg}); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("pinned: got %v, want ErrOverloaded", err)
	}
	for s := 1; s < 3; s++ {
		if len(pfakes[s].served()) != 0 {
			t.Errorf("pinned request leaked to shard %d", s)
		}
	}
}

// TestFleetDeadSkip pins the dead-shard rule: a down owner is skipped
// WITHOUT consuming the fallback hop budget, so even a zero-hop config
// still reaches the next live shard.
func TestFleetDeadSkip(t *testing.T) {
	f, fakes := fakeFleet(t, 3, Config{FallbackHops: -1}) // zero hops
	ctx := context.Background()
	img := imageOwnedBy(f.ring, 1)
	fakes[1].down.Store(true)
	res, err := f.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: img})
	if err != nil {
		t.Fatalf("dead-skip Classify: %v", err)
	}
	hash := coding.HashImage(img)
	if res.Prediction != int(hash%10) {
		t.Errorf("dead-skip answer = %d, want %d", res.Prediction, int(hash%10))
	}
	snap := f.Snapshot()
	if snap.PerShard[1].DeadSkips == 0 {
		t.Error("dead owner recorded no deadSkips")
	}
	if snap.LiveShards != 2 {
		t.Errorf("LiveShards = %d, want 2", snap.LiveShards)
	}
	// All shards down: a clean ErrWorkerDown, not a hang.
	fakes[0].down.Store(true)
	fakes[2].down.Store(true)
	if _, err := f.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: img}); !errors.Is(err, ErrWorkerDown) {
		t.Fatalf("all-dead: got %v, want ErrWorkerDown", err)
	}
}

// TestFleetRetryAfterOwner pins satellite (a): the Retry-After hint for
// a shed request is the OWNING shard's projection (a retry re-hashes to
// the same owner), not a fleet average — and only a dead owner defers to
// the next shard in the request's ring sequence.
func TestFleetRetryAfterOwner(t *testing.T) {
	f, fakes := fakeFleet(t, 4, Config{})
	img := imageOwnedBy(f.ring, 2)
	// Each fake reports (shard+1) seconds; the owner's voice must win.
	if got := f.RetryAfter("digits", img); got != 3*time.Second {
		t.Errorf("RetryAfter = %v, want 3s (owner shard 2)", got)
	}
	// Dead owner (dead in the FLEET's view — the routing plane keys off
	// its own eviction state, not the worker's internals): fall to the
	// next shard in the ring sequence.
	fakes[2].down.Store(true)
	f.markDead(2)
	next := f.ring.Sequence(coding.HashImage(img), 4)[1]
	if got, want := f.RetryAfter("digits", img), time.Duration(next+1)*time.Second; got != want {
		t.Errorf("RetryAfter with dead owner = %v, want %v (shard %d)", got, want, next)
	}
	// Everything dead: a safe floor, not a panic.
	for s, w := range fakes {
		w.down.Store(true)
		f.markDead(s)
	}
	if got := f.RetryAfter("digits", img); got != time.Second {
		t.Errorf("RetryAfter all-dead = %v, want 1s", got)
	}
}

// TestFleetSingleShardInvariance is the acceptance criterion: a 1-shard
// fleet must produce exactly the outcomes the bare server produces —
// sharding is a scale-out plane, never a semantics change.
func TestFleetSingleShardInvariance(t *testing.T) {
	cfg := serve.Config{ResponseCacheSize: -1} // no caching: every request simulates
	direct := newShardServer(t, cfg)
	t.Cleanup(func() { _ = direct.Shutdown(context.Background()) })
	f, err := New(Config{Shards: 1, HealthInterval: -1}, inprocFactory(t, cfg))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = f.Close() })

	ctx := context.Background()
	_, set := testModel(t)
	for i, sample := range set.Test[:12] {
		req := serve.ClassifyRequest{Model: "digits", Image: sample.Image}
		want, err := direct.Classify(ctx, req)
		if err != nil {
			t.Fatalf("direct Classify(%d): %v", i, err)
		}
		got, err := f.Classify(ctx, req)
		if err != nil {
			t.Fatalf("fleet Classify(%d): %v", i, err)
		}
		// Identical up to wall-clock noise: normalize the non-semantic
		// fields, then require exact equality on everything else.
		got.LatencyMs, want.LatencyMs = 0, 0
		got.RequestID, want.RequestID = "", ""
		if got != want {
			t.Errorf("image %d: fleet %+v != direct %+v", i, got, want)
		}
	}
}

// TestFleetFallbackCacheDiscipline routes real traffic through a mixed
// fleet — a permanently-shedding fake owner in front of a real serving
// shard — and checks the pixel-verified response cache on the fallback
// shard behaves exactly as it would for owned traffic: first arrival
// simulates, the replay hits the cache, and both return the same answer.
func TestFleetFallbackCacheDiscipline(t *testing.T) {
	real := NewInprocWorker(newShardServer(t, serve.Config{ResponseCacheSize: 64}))
	shedder := &fakeWorker{retry: time.Second}
	shedder.shed.Store(true)
	workers := []Worker{shedder, real}
	f, err := New(Config{Shards: 2, FallbackHops: 1, HealthInterval: -1},
		func(s int) (Worker, error) { return workers[s], nil })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = f.Close() })

	ctx := context.Background()
	_, set := testModel(t)
	img := imageOwnedBy(f.ring, 0)
	// Give the fallback shard a real image the model can run: any owned
	// by shard 0 works, but use a dataset image for a meaningful answer.
	for _, s := range set.Test {
		if f.ring.Owner(coding.HashImage(s.Image)) == 0 {
			img = s.Image
			break
		}
	}
	first, err := f.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: img})
	if err != nil {
		t.Fatalf("first Classify: %v", err)
	}
	if first.Cached {
		t.Fatal("first arrival must simulate, not hit the cache")
	}
	// The response cache promotes a key on its SECOND sighting (unique
	// traffic never allocates entries), so the second request simulates
	// and stores; the third is the first eligible hit. That promotion
	// gate holding on fallback-served traffic is exactly the discipline
	// under test.
	second, err := f.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: img})
	if err != nil {
		t.Fatalf("second Classify: %v", err)
	}
	if second.Cached {
		t.Error("second sighting should simulate (promotion, not a hit)")
	}
	replay, err := f.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: img})
	if err != nil {
		t.Fatalf("replay Classify: %v", err)
	}
	if !replay.Cached {
		t.Error("replay should hit the fallback shard's response cache")
	}
	if replay.Prediction != first.Prediction || replay.Steps != first.Steps {
		t.Errorf("cached replay diverged: %+v vs %+v", replay, first)
	}
	st, err := real.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if hits := st.Models["digits"].Counters.ResponseCacheHits; hits != 1 {
		t.Errorf("fallback shard cache hits = %d, want 1", hits)
	}
}

// TestFleetSuperviseRespawn is satellite (d): kill a worker mid-load and
// assert (1) not one request on any shard is dropped — in-flight and
// subsequent requests for the dead shard re-route to the survivor until
// (2) the supervisor respawns the shard and traffic returns. Run under
// -race this also pins the supervisor/request-path locking.
func TestFleetSuperviseRespawn(t *testing.T) {
	cfg := serve.Config{ResponseCacheSize: -1}
	f, err := New(Config{
		Shards:         2,
		HealthInterval: 20 * time.Millisecond,
	}, inprocFactory(t, cfg))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = f.Close() })

	_, set := testModel(t)
	ctx := context.Background()
	var failures atomic.Int64
	var completed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				img := set.Test[(g*7+i)%len(set.Test)].Image
				if _, err := f.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: img}); err != nil {
					failures.Add(1)
					t.Errorf("classify during kill: %v", err)
					return
				}
				completed.Add(1)
			}
		}(g)
	}
	// Let load establish, then kill shard 0 out from under it.
	time.Sleep(50 * time.Millisecond)
	w0, ok := f.Worker(0).(*InprocWorker)
	if !ok {
		t.Fatal("shard 0 worker is not in-proc")
	}
	w0.Kill()
	// Wait for the supervisor to notice and respawn.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := f.Snapshot()
		if snap.PerShard[0].Respawns >= 1 && snap.LiveShards == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard 0 never respawned")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Traffic keeps flowing on the respawned fleet.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d requests dropped across the kill/respawn", failures.Load())
	}
	if completed.Load() == 0 {
		t.Fatal("no requests completed")
	}
	// The respawned worker is a different instance and serves directly.
	w0b, ok := f.Worker(0).(*InprocWorker)
	if !ok || w0b == w0 {
		t.Fatal("shard 0 was not rebuilt")
	}
	img := imageOwnedBy(f.ring, 0)
	if _, err := w0b.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: img}); err != nil {
		t.Fatalf("respawned worker Classify: %v", err)
	}
}

// TestFleetAutoscale drives one shard into sustained queue pressure and
// watches the autoscaler widen its pool toward MaxReplicas, then drain
// and watches it narrow back.
func TestFleetAutoscale(t *testing.T) {
	cfg := serve.Config{
		ResponseCacheSize: -1,
		MaxBatch:          2,
		QueueDepth:        4,
		InjectLatency:     10 * time.Millisecond,
	}
	f, err := New(Config{
		Shards:            1,
		HealthInterval:    -1,
		Autoscale:         true,
		AutoscaleInterval: 20 * time.Millisecond,
		GrowPressure:      0.2,
	}, inprocFactory(t, cfg))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = f.Close() })

	testModel(t)
	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Unique images (no dedupe collapse) from enough closed-loop clients
	// to overflow what the dispatcher absorbs outside the queue (forming
	// batch + slot-waiting batches), so submits actually observe fill.
	var imgSeq atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				img := testImage(int(imgSeq.Add(1)))
				_, _ = f.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: img})
			}
		}()
	}
	grew := false
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		snap := f.Snapshot()
		if ms, ok := snap.Models["digits"]; ok {
			if g, ok := ms.PerShard["0"]; ok && g.PoolSize > 1 {
				grew = true
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if !grew {
		t.Fatal("autoscaler never widened the pool under sustained pressure")
	}
	// Idle: pressure decays, the pool narrows back to 1.
	deadline = time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		snap := f.Snapshot()
		if g, ok := snap.Models["digits"].PerShard["0"]; ok && g.PoolSize == 1 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("autoscaler never narrowed the pool after drain")
}

// TestFleetMetricsMergeAndProm sends mixed traffic through a real
// 2-shard fleet and checks the merged snapshot adds up (per-shard
// requests sum to the fleet total; merged stage histograms carry every
// observation) and the Prometheus exposition parses clean.
func TestFleetMetricsMergeAndProm(t *testing.T) {
	f, err := New(Config{Shards: 2, HealthInterval: -1},
		inprocFactory(t, serve.Config{ResponseCacheSize: 64}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	front := NewFront(f)
	t.Cleanup(func() { _ = front.Shutdown(context.Background()) })

	_, set := testModel(t)
	ctx := context.Background()
	const n = 16
	for i := 0; i < n; i++ {
		img := set.Test[i%len(set.Test)].Image
		if _, err := f.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: img}); err != nil {
			t.Fatalf("Classify(%d): %v", i, err)
		}
	}
	snap := f.Snapshot()
	ms, ok := snap.Models["digits"]
	if !ok {
		t.Fatal("snapshot is missing the model")
	}
	if ms.Counters.Requests != n {
		t.Errorf("merged requests = %d, want %d", ms.Counters.Requests, n)
	}
	var perShard int64
	for s := 0; s < 2; s++ {
		st, err := f.Worker(s).Stats()
		if err != nil {
			t.Fatalf("shard %d stats: %v", s, err)
		}
		perShard += st.Models["digits"].Counters.Requests
	}
	if perShard != n {
		t.Errorf("per-shard requests sum = %d, want %d", perShard, n)
	}
	total, ok := ms.Stages["total"]
	if !ok {
		t.Fatal("merged stages missing 'total'")
	}
	if total.Count == 0 {
		t.Error("merged total stage carries no observations")
	}
	if len(ms.PerShard) != 2 {
		t.Errorf("per-shard gauges = %d entries, want 2", len(ms.PerShard))
	}

	// The exposition endpoint must emit parseable 0.0.4 text with the
	// fleet families present.
	srv := httptest.NewServer(front.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics/prom")
	if err != nil {
		t.Fatalf("GET /metrics/prom: %v", err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	tee := io.TeeReader(resp.Body, &buf)
	samples, err := obs.ValidatePromText(tee)
	if err != nil {
		t.Fatalf("prom exposition invalid: %v", err)
	}
	if samples == 0 {
		t.Fatal("prom exposition empty")
	}
	text := buf.String()
	for _, family := range []string{
		"burstsnn_fleet_shards",
		"burstsnn_fleet_dispatched_total",
		"burstsnn_fleet_requests_total",
		"burstsnn_fleet_stage_duration_seconds",
		`shard="0"`,
		`shard="1"`,
	} {
		if !strings.Contains(text, family) {
			t.Errorf("prom exposition missing %q", family)
		}
	}
}

// TestFleetShutdownGoroutineBaseline builds a full fleet (supervision +
// autoscale on), serves traffic, shuts down, and requires the goroutine
// count to return to its pre-fleet baseline — no leaked supervisor,
// autoscaler, batcher, or worker goroutines. Meaningful under -race.
func TestFleetShutdownGoroutineBaseline(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()

	f, err := New(Config{
		Shards:            2,
		HealthInterval:    25 * time.Millisecond,
		Autoscale:         true,
		AutoscaleInterval: 25 * time.Millisecond,
	}, inprocFactory(t, serve.Config{}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, set := testModel(t)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		img := set.Test[i%len(set.Test)].Image
		if _, err := f.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: img}); err != nil {
			t.Fatalf("Classify: %v", err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines %d > baseline %d after Close\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestFleetFrontHTTP exercises the whole HTTP face end to end: classify,
// models, healthz (degraded on a dead shard), and the 503 path when the
// fleet has nothing live.
func TestFleetFrontHTTP(t *testing.T) {
	fakes := make([]*fakeWorker, 2)
	f, err := New(Config{Shards: 2, HealthInterval: -1}, func(s int) (Worker, error) {
		fakes[s] = &fakeWorker{shard: s, retry: 2 * time.Second}
		return fakes[s], nil
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	front := NewFront(f)
	t.Cleanup(func() { _ = front.Shutdown(context.Background()) })
	srv := httptest.NewServer(front.Handler())
	defer srv.Close()

	img := testImage(1)
	body := func() *strings.Reader {
		b, _ := json.Marshal(serve.ClassifyRequest{Model: "digits", Image: img})
		return strings.NewReader(string(b))
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/classify", "application/json", body())
	if err != nil {
		t.Fatalf("POST /v1/classify: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("classify status = %d", resp.StatusCode)
	}

	// Every shard shedding: 429 with the owner's Retry-After.
	for _, w := range fakes {
		w.shed.Store(true)
	}
	resp, err = srv.Client().Post(srv.URL+"/v1/classify", "application/json", body())
	if err != nil {
		t.Fatalf("POST shed: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("shed status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	for _, w := range fakes {
		w.shed.Store(false)
	}

	// One dead shard: healthz reports degraded.
	fakes[0].down.Store(true)
	_, _ = f.Classify(context.Background(), serve.ClassifyRequest{Model: "digits", Image: imageOwnedBy(f.ring, 0)})
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var hz struct {
		Status     string `json:"status"`
		LiveShards int    `json:"liveShards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	resp.Body.Close()
	if hz.Status != "degraded" || hz.LiveShards != 1 {
		t.Errorf("healthz = %+v, want degraded/1", hz)
	}

	// Everything dead: classify answers 503.
	fakes[1].down.Store(true)
	fmtDead := func() int {
		resp, err := srv.Client().Post(srv.URL+"/v1/classify", "application/json", body())
		if err != nil {
			t.Fatalf("POST all-dead: %v", err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := fmtDead(); code != 503 {
		t.Fatalf("all-dead status = %d, want 503", code)
	}
}
