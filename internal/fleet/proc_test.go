package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"

	"burstsnn/internal/serve"
)

// TestMain doubles as the fake worker process: when re-exec'd with
// FLEET_TEST_WORKER=1 the binary serves the worker wire protocol
// (announce line, /healthz, /v1/classify, /metrics/shard, /v1/pool)
// without the cost of a real model, so the ProcWorker test pins the
// transport mapping, not the simulator.
func TestMain(m *testing.M) {
	if os.Getenv("FLEET_TEST_WORKER") == "1" {
		runFakeWorkerProcess()
		return
	}
	os.Exit(m.Run())
}

func runFakeWorkerProcess() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		var req serve.ClassifyRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Model == "shed" {
			w.Header().Set("Retry-After", "7")
			http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
			return
		}
		_ = json.NewEncoder(w).Encode(serve.ClassifyResult{
			Model: req.Model, Prediction: len(req.Image) % 10, Steps: 42,
		})
	})
	mux.HandleFunc("GET /metrics/shard", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode(serve.ShardStats{
			UptimeSec: 1,
			Models: map[string]serve.ModelShardStats{
				"digits": {RetryAfterSec: 7, PoolSize: 2, PoolMax: 4},
			},
		})
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{
			"models": []serve.Info{{Name: "digits", Classes: 10}},
		})
	})
	mux.HandleFunc("POST /v1/pool", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Model    string `json:"model"`
			Replicas int    `json:"replicas"`
		}
		_ = json.NewDecoder(r.Body).Decode(&req)
		if req.Replicas > 4 {
			req.Replicas = 4
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"model": req.Model, "replicas": req.Replicas})
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fake worker listen:", err)
		os.Exit(1)
	}
	// The contract under test: announce the bound address on stdout.
	fmt.Printf("%s%s\n", WorkerAddrPrefix, ln.Addr().String())
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	<-sig
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	os.Exit(0)
}

func spawnFakeWorker(t *testing.T) *ProcWorker {
	t.Helper()
	bin, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	t.Setenv("FLEET_TEST_WORKER", "1")
	w, err := SpawnProcWorker(bin, nil, 15*time.Second)
	if err != nil {
		t.Fatalf("SpawnProcWorker: %v", err)
	}
	return w
}

// TestProcWorkerWire pins the ProcWorker transport mapping against a
// real child process: spawn + announce + health, 200 → result,
// 429 → serve.ErrOverloaded, stats/models/resize round-trips, and a
// graceful SIGTERM close.
func TestProcWorkerWire(t *testing.T) {
	w := spawnFakeWorker(t)
	closed := false
	defer func() {
		if !closed {
			_ = w.Close()
		}
	}()

	if !w.Healthy() {
		t.Fatal("spawned worker not healthy")
	}
	ctx := context.Background()
	res, err := w.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: make([]float64, 13)})
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if res.Prediction != 3 || res.Steps != 42 {
		t.Errorf("Classify result = %+v", res)
	}
	if _, err := w.Classify(ctx, serve.ClassifyRequest{Model: "shed"}); !errors.Is(err, serve.ErrOverloaded) {
		t.Errorf("429 mapped to %v, want serve.ErrOverloaded", err)
	}
	st, err := w.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if ms := st.Models["digits"]; ms.PoolSize != 2 || ms.PoolMax != 4 {
		t.Errorf("Stats models = %+v", st.Models)
	}
	if got := w.RetryAfter("digits"); got != 7*time.Second {
		t.Errorf("RetryAfter = %v, want 7s", got)
	}
	models, err := w.Models()
	if err != nil || len(models) != 1 || models[0].Name != "digits" {
		t.Errorf("Models = %v, %v", models, err)
	}
	if n, err := w.Resize("digits", 9); err != nil || n != 4 {
		t.Errorf("Resize = %d, %v, want clamp to 4", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	closed = true
}

// TestProcWorkerCrash kills the child out from under the client and
// requires the dead-worker taxonomy: Classify fails ErrWorkerDown (the
// supervisor's eviction trigger), Healthy goes false.
func TestProcWorkerCrash(t *testing.T) {
	w := spawnFakeWorker(t)
	defer func() { _ = w.Close() }()

	if err := syscall.Kill(w.Pid(), syscall.SIGKILL); err != nil {
		t.Fatalf("kill: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := w.Classify(context.Background(), serve.ClassifyRequest{Model: "digits"})
		if errors.Is(err, ErrWorkerDown) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Classify after kill: %v, want ErrWorkerDown", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if w.Healthy() {
		t.Error("killed worker reports healthy")
	}
}
