package fleet

import (
	"testing"
)

// lcg yields the deterministic key stream the distribution tests share.
func lcg(r uint64) uint64 { return r*6364136223846793005 + 1442695040888963407 }

// TestRingBalance bounds the load skew: over 20k uniform keys and 8
// shards, every shard's share must stay near 1/8. With 64 vnodes the arc
// lengths concentrate well; the tolerance (±35% of the mean) is loose
// enough to be seed-independent yet tight enough to catch a broken point
// distribution (a naive modulo-on-first-byte ring fails it immediately).
// A chi-square-style aggregate check bounds the overall imbalance too.
func TestRingBalance(t *testing.T) {
	const shards, keys = 8, 20000
	r, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, shards)
	k := uint64(3)
	for i := 0; i < keys; i++ {
		k = lcg(k)
		counts[r.Owner(k)]++
	}
	mean := float64(keys) / shards
	chi2 := 0.0
	for s, c := range counts {
		if c < mean*0.65 || c > mean*1.35 {
			t.Errorf("shard %d owns %v keys, outside [%v, %v]", s, c, mean*0.65, mean*1.35)
		}
		d := c - mean
		chi2 += d * d / mean
	}
	// Unlike a uniform multinomial (chi2 ~ 14 at p=0.05, 7 df), most of
	// the statistic here is the vnode arc-share variance itself: with 64
	// points per shard the share std is ~1/√64 of the mean, which puts the
	// expected statistic near keys·Σ(Δshare)² ≈ 300. A clustered ring
	// (e.g. unfinalized FNV of the short vnode labels) scores >7000.
	if chi2 > 1000 {
		t.Errorf("chi-square statistic %v too large (counts %v)", chi2, counts)
	}
}

// TestRingStability pins the consistent-hashing property: growing 8
// shards to 9 must move only ~1/9 of the keys (bounded at 25% to stay
// robust), and every moved key must land on the ring, not shuffle between
// old shards arbitrarily — keys that stay must keep their exact owner.
func TestRingStability(t *testing.T) {
	const keys = 20000
	r8, err := NewRing(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	r9, err := NewRing(9, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	k := uint64(11)
	for i := 0; i < keys; i++ {
		k = lcg(k)
		a, b := r8.Owner(k), r9.Owner(k)
		if a != b {
			moved++
			if b != 8 {
				// A key that moves during a grow may only move to the new
				// shard: its arc was claimed by one of shard 8's points.
				t.Fatalf("key %x moved %d -> %d, not to the new shard", k, a, b)
			}
		}
	}
	frac := float64(moved) / keys
	if frac == 0 {
		t.Fatal("no keys moved when adding a shard")
	}
	if want := 1.0 / 9; frac > 0.25 {
		t.Errorf("grow 8->9 moved %.1f%% of keys, want ~%.1f%% (<25%%)", frac*100, want*100)
	}
}

func TestRingDeterminism(t *testing.T) {
	a, _ := NewRing(4, 16)
	b, _ := NewRing(4, 16)
	k := uint64(99)
	for i := 0; i < 1000; i++ {
		k = lcg(k)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings built identically disagree on key %x", k)
		}
	}
}

func TestRingSequence(t *testing.T) {
	r, _ := NewRing(4, 16)
	k := uint64(17)
	for i := 0; i < 200; i++ {
		k = lcg(k)
		seq := r.Sequence(k, 3)
		if len(seq) != 3 {
			t.Fatalf("Sequence length %d, want 3", len(seq))
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("Sequence[0] = %d, Owner = %d", seq[0], r.Owner(k))
		}
		seen := map[int]bool{}
		for _, s := range seq {
			if seen[s] {
				t.Fatalf("Sequence repeats shard %d: %v", s, seq)
			}
			seen[s] = true
		}
	}
	// Clamped to the shard count and floored at 1.
	if got := r.Sequence(42, 10); len(got) != 4 {
		t.Fatalf("Sequence(10) over 4 shards has %d entries", len(got))
	}
	if got := r.Sequence(42, 0); len(got) != 1 {
		t.Fatalf("Sequence(0) has %d entries, want 1", len(got))
	}
	if err := func() error { _, err := NewRing(0, 0); return err }(); err == nil {
		t.Fatal("NewRing(0) succeeded")
	}
}
