package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"burstsnn/internal/serve"
)

// Front is the fleet's HTTP face: the same API surface as one
// serve.Server (POST /v1/classify, GET /v1/models, /healthz, /metrics,
// /metrics/prom), served by consistent-hash routing across the shards.
// Kept off Fleet so the routing core stays listener-free for in-process
// use.
type Front struct {
	f *Fleet

	mu      sync.Mutex
	httpSrv *http.Server
	lnAddr  string
	closed  bool
}

// NewFront wraps a fleet for serving.
func NewFront(f *Fleet) *Front { return &Front{f: f} }

// Fleet returns the routing core.
func (fr *Front) Fleet() *Fleet { return fr.f }

// Handler returns the front tier's HTTP API.
func (fr *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", fr.handleClassify)
	mux.HandleFunc("GET /v1/models", fr.handleModels)
	mux.HandleFunc("DELETE /v1/models/{name}", fr.handleUnregister)
	mux.HandleFunc("GET /healthz", fr.handleHealthz)
	mux.HandleFunc("GET /metrics", fr.handleMetrics)
	mux.HandleFunc("GET /metrics/prom", fr.handleMetricsProm)
	return mux
}

func (fr *Front) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req serve.ClassifyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	res, err := fr.f.Classify(r.Context(), req)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, serve.ErrOverloaded):
			// Every tried shard shed. The hint is the OWNING shard's
			// drain projection: a retry re-hashes to the same owner.
			status = http.StatusTooManyRequests
			secs := int(math.Ceil(fr.f.RetryAfter(req.Model, req.Image).Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		case errors.Is(err, ErrWorkerDown), errors.Is(err, serve.ErrClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (fr *Front) handleModels(w http.ResponseWriter, _ *http.Request) {
	models, err := fr.f.Models()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": models})
}

// handleUnregister broadcasts DELETE /v1/models/{name} (mode=evict
// archives) to every live shard, mirroring one server's API.
func (fr *Front) handleUnregister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	evict := r.URL.Query().Get("mode") == "evict"
	if err := fr.f.Unregister(name, evict); err != nil {
		// Not-found only when a shard actually said so; anything else
		// (worker down, shutdown, partial broadcast) is the fleet
		// declining, not the model missing.
		status := http.StatusServiceUnavailable
		if errors.Is(err, serve.ErrUnknownModel) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	state := "unregistered"
	if evict {
		state = serve.StateEvicted
	}
	writeJSON(w, http.StatusOK, map[string]string{"model": name, "state": state})
}

func (fr *Front) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	snap := fr.f.Snapshot()
	status := "ok"
	if snap.LiveShards == 0 {
		status = "down"
	} else if snap.LiveShards < snap.Shards {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     status,
		"uptimeSec":  snap.UptimeSec,
		"shards":     snap.Shards,
		"liveShards": snap.LiveShards,
		"goroutines": runtime.NumGoroutine(),
	})
}

func (fr *Front) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		fr.handleMetricsProm(w, r)
		return
	}
	writeJSON(w, http.StatusOK, fr.f.Snapshot())
}

func (fr *Front) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = fr.f.writeProm(w)
}

// Serve runs the HTTP front on an existing listener, blocking until
// Shutdown (nil) or a listener error.
func (fr *Front) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: fr.Handler(), ReadHeaderTimeout: 10 * time.Second}
	fr.mu.Lock()
	if fr.closed {
		fr.mu.Unlock()
		ln.Close()
		return serve.ErrClosed
	}
	fr.httpSrv = srv
	fr.lnAddr = ln.Addr().String()
	fr.mu.Unlock()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// ListenAndServe binds addr and serves (see Serve).
func (fr *Front) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return fr.Serve(ln)
}

// Addr returns the bound listen address once Serve runs ("" before).
func (fr *Front) Addr() string {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.lnAddr
}

// Shutdown stops the HTTP front, then closes the fleet (supervisor,
// autoscaler, every worker). Safe without a running listener.
func (fr *Front) Shutdown(ctx context.Context) error {
	fr.mu.Lock()
	if fr.closed {
		fr.mu.Unlock()
		return nil
	}
	fr.closed = true
	srv := fr.httpSrv
	fr.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	if cerr := fr.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
