// Package fleet is the horizontal scale-out tier above internal/serve:
// a front tier that consistent-hashes requests over a set of worker
// shards (in-process servers or snnserve -worker processes), keeps each
// shard's caches hot for its slice of the image space, supervises worker
// health, autoscales per-shard replica pools from queue pressure, and
// merges per-shard telemetry into fleet-wide /metrics and /metrics/prom.
//
// Routing keys on coding.HashImage — the same content hash the
// QuantCache, ExitHistory, and ResponseCache all key on — so a shard
// owns a stable slice of the image space and every replay of an image
// lands where its cache entries live. When the owner sheds (429), a
// bounded-load fallback offers the request to the next shards on the
// ring before giving up, trading one cold cache miss for availability.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per shard on the hash ring.
// 64 points per shard keeps the max/mean load ratio within a few percent
// for the shard counts a single machine runs (≤ NumCPU) while keeping
// ring construction trivial.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over shard indices 0..n-1. Points are
// deterministic (FNV-1a of "shard-<i>/<v>", finalized through a
// splitmix64 mix — raw FNV of short sequential labels clusters badly,
// up to 2× arc-share skew at 64 vnodes), so every front tier built
// over the same shard count routes identically — there is no seed and no
// runtime randomness.
//
// A Ring is immutable after construction; rebuilding with n±1 shards
// moves only ~1/n of the key space (the consistent-hashing property the
// stability test pins).
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// splitmix64 is the standard 64-bit finalizer (Steele et al.'s SplitMix
// mixer): full-avalanche bit diffusion over the weakly-mixed FNV sums of
// short vnode labels.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRing builds a ring over shards shards with vnodes points each
// (vnodes <= 0 uses DefaultVNodes).
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("fleet: ring needs at least 1 shard, got %d", shards)
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{points: make([]ringPoint, 0, shards*vnodes), shards: shards}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "shard-%d/%d", s, v)
			r.points = append(r.points, ringPoint{hash: splitmix64(h.Sum64()), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Deterministic tie-break (64-bit FNV collisions are effectively
		// theoretical at these point counts, but the order must not depend
		// on sort internals).
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the shard count the ring was built over.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard owning key: the first ring point clockwise
// from the key's position.
func (r *Ring) Owner(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].shard
}

// Sequence returns the key's owner followed by the next distinct shards
// clockwise around the ring, up to n entries — the bounded-load fallback
// order. n is clamped to the shard count.
func (r *Ring) Sequence(key uint64, n int) []int {
	if n > r.shards {
		n = r.shards
	}
	if n < 1 {
		n = 1
	}
	seq := make([]int, 0, n)
	seen := make(map[int]bool, n)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for probed := 0; probed < len(r.points) && len(seq) < n; probed++ {
		p := r.points[(i+probed)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			seq = append(seq, p.shard)
		}
	}
	return seq
}
