package fleet

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"burstsnn/internal/coding"
	"burstsnn/internal/serve"
)

// Config tunes the fleet front tier.
type Config struct {
	// Shards is the worker count (required, >= 1).
	Shards int
	// VNodes is the consistent-hash ring's virtual-node count per shard
	// (default DefaultVNodes).
	VNodes int
	// FallbackHops bounds how many additional shards a request may be
	// offered after its owner sheds it (bounded-load fallback). Default
	// 1; negative pins requests to their owner (shed = 429). Dead shards
	// never consume a hop.
	FallbackHops int
	// HealthInterval is the supervisor's probe period (default 250ms;
	// negative disables supervision — dead shards stay dead).
	HealthInterval time.Duration
	// Autoscale enables per-shard pool autoscaling from each shard's
	// queue-pressure EWMA: pressure above GrowPressure widens the model's
	// replica pool one step (up to its MaxReplicas), pressure below
	// ShrinkPressure narrows it (down to 1).
	Autoscale         bool
	AutoscaleInterval time.Duration // default 250ms
	GrowPressure      float64       // default 0.5
	ShrinkPressure    float64       // default 0.05
}

func (c Config) withDefaults() (Config, error) {
	if c.Shards < 1 {
		return c, fmt.Errorf("fleet: need at least 1 shard, got %d", c.Shards)
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.FallbackHops == 0 {
		c.FallbackHops = 1
	}
	if c.FallbackHops < 0 {
		c.FallbackHops = 0
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.AutoscaleInterval <= 0 {
		c.AutoscaleInterval = 250 * time.Millisecond
	}
	if c.GrowPressure <= 0 {
		c.GrowPressure = 0.5
	}
	if c.ShrinkPressure <= 0 {
		c.ShrinkPressure = 0.05
	}
	return c, nil
}

// WorkerFactory builds (or rebuilds, after an eviction) the worker for
// one shard index. It must return a ready worker: models registered, and
// for process workers the /healthz probe already passing.
type WorkerFactory func(shard int) (Worker, error)

// shardCounters is one shard's routing accounting, all atomics (the
// request path never takes the fleet lock for counting).
type shardCounters struct {
	dispatched atomic.Int64 // requests this shard answered (success or request-level error)
	fallbacks  atomic.Int64 // requests that arrived here after another shard shed them
	sheds      atomic.Int64 // requests this shard shed (ErrOverloaded)
	deadSkips  atomic.Int64 // requests routed past this shard while it was down
	respawns   atomic.Int64 // times the supervisor rebuilt this shard's worker
}

// Fleet is the front tier: consistent-hash routing with bounded-load
// fallback over a supervised set of shard workers. See the package
// comment for the routing contract.
type Fleet struct {
	cfg     Config
	ring    *Ring
	factory WorkerFactory
	start   time.Time

	mu      sync.RWMutex
	workers []Worker
	dead    []bool

	counters []shardCounters

	stopOnce sync.Once
	stop     chan struct{}
	loops    sync.WaitGroup
}

// New builds the ring, spawns one worker per shard via factory, and
// starts the supervisor (and autoscaler, when enabled). On any spawn
// error the already-spawned workers are closed and the error returned.
func New(cfg Config, factory WorkerFactory) (*Fleet, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ring, err := NewRing(cfg.Shards, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:      cfg,
		ring:     ring,
		factory:  factory,
		start:    time.Now(),
		workers:  make([]Worker, cfg.Shards),
		dead:     make([]bool, cfg.Shards),
		counters: make([]shardCounters, cfg.Shards),
		stop:     make(chan struct{}),
	}
	for s := 0; s < cfg.Shards; s++ {
		w, err := factory(s)
		if err != nil {
			for _, spawned := range f.workers[:s] {
				_ = spawned.Close()
			}
			return nil, fmt.Errorf("fleet: spawn shard %d: %w", s, err)
		}
		f.workers[s] = w
	}
	if cfg.HealthInterval > 0 {
		f.loops.Add(1)
		go f.supervise()
	}
	if cfg.Autoscale {
		f.loops.Add(1)
		go f.autoscale()
	}
	return f, nil
}

// Shards returns the shard count.
func (f *Fleet) Shards() int { return f.cfg.Shards }

// Worker returns the live worker for a shard (nil while the shard is
// down awaiting respawn).
func (f *Fleet) Worker(shard int) Worker {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.dead[shard] {
		return nil
	}
	return f.workers[shard]
}

// Owner returns the shard owning an image hash (coding.HashImage).
func (f *Fleet) Owner(hash uint64) int { return f.ring.Owner(hash) }

func (f *Fleet) markDead(shard int) {
	f.mu.Lock()
	f.dead[shard] = true
	f.mu.Unlock()
}

// Classify routes one request: the image-hash owner first, then — when a
// shard sheds with serve.ErrOverloaded — up to FallbackHops further
// shards clockwise on the ring. Dead shards are skipped without
// consuming a hop (and a worker that dies mid-request is marked dead and
// skipped the same way, so its in-flight requests finish on the next
// live shard instead of dropping). If every tried shard shed, the
// owner's shed error is returned — its Retry-After projection, not a
// fleet average, is the honest hint (see RetryAfter).
func (f *Fleet) Classify(ctx context.Context, req serve.ClassifyRequest) (serve.ClassifyResult, error) {
	seq := f.ring.Sequence(coding.HashImage(req.Image), f.cfg.Shards)
	tries, maxTries := 0, 1+f.cfg.FallbackHops
	var firstShed error
	for _, shard := range seq {
		if tries >= maxTries {
			break
		}
		if err := ctx.Err(); err != nil {
			return serve.ClassifyResult{}, err
		}
		w := f.Worker(shard)
		if w == nil {
			f.counters[shard].deadSkips.Add(1)
			continue
		}
		if tries > 0 {
			f.counters[shard].fallbacks.Add(1)
		}
		res, err := w.Classify(ctx, req)
		switch {
		case err == nil:
			f.counters[shard].dispatched.Add(1)
			return res, nil
		case errors.Is(err, serve.ErrOverloaded):
			f.counters[shard].sheds.Add(1)
			if firstShed == nil {
				firstShed = err
			}
			tries++
		case errors.Is(err, ErrWorkerDown):
			f.markDead(shard)
			f.counters[shard].deadSkips.Add(1)
			// No hop consumed: a dead shard must not eat the fallback
			// budget meant for overload.
		default:
			// A request-level failure (bad input, unknown model, timeout
			// inside execution): the shard did take the request.
			f.counters[shard].dispatched.Add(1)
			return res, err
		}
	}
	if firstShed != nil {
		return serve.ClassifyResult{}, firstShed
	}
	return serve.ClassifyResult{}, fmt.Errorf("%w: no live shard for request", ErrWorkerDown)
}

// RetryAfter is the Retry-After hint for a shed request: the OWNING
// shard's drain-time projection. Under uneven load a fleet average would
// understate a hot shard's backlog and overstate a cold one's; the
// request will be re-hashed to the same owner on retry, so the owner's
// projection is the only honest one. Falls back to the first live shard
// in the request's ring sequence while the owner is down, and 1s when
// everything is.
func (f *Fleet) RetryAfter(model string, image []float64) time.Duration {
	hash := coding.HashImage(image)
	for _, shard := range f.ring.Sequence(hash, f.cfg.Shards) {
		if w := f.Worker(shard); w != nil {
			return w.RetryAfter(model)
		}
	}
	return time.Second
}

// Models lists the registered models from the first live shard (every
// shard registers the same set).
func (f *Fleet) Models() ([]serve.Info, error) {
	for s := 0; s < f.cfg.Shards; s++ {
		if w := f.Worker(s); w != nil {
			return w.Models()
		}
	}
	return nil, fmt.Errorf("%w: no live shard", ErrWorkerDown)
}

// Unregister broadcasts a model removal (evict=true archives for
// warm-on-demand) to every live shard. Dead shards are skipped — their
// respawn factory defines what they serve — and the first per-shard
// error is joined per shard so a partial broadcast is visible.
func (f *Fleet) Unregister(model string, evict bool) error {
	var errs []error
	tried := false
	for s := 0; s < f.cfg.Shards; s++ {
		w := f.Worker(s)
		if w == nil {
			continue
		}
		tried = true
		if err := w.Unregister(model, evict); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", s, err))
		}
	}
	if !tried {
		return fmt.Errorf("%w: no live shard", ErrWorkerDown)
	}
	return errors.Join(errs...)
}

// supervise probes every shard each HealthInterval and rebuilds dead or
// unhealthy workers through the factory. A failed rebuild leaves the
// shard dead and retries next tick.
func (f *Fleet) supervise() {
	defer f.loops.Done()
	ticker := time.NewTicker(f.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
		}
		for s := 0; s < f.cfg.Shards; s++ {
			f.mu.RLock()
			w, dead := f.workers[s], f.dead[s]
			f.mu.RUnlock()
			if !dead && w != nil && w.Healthy() {
				continue
			}
			if !dead {
				// Health probe caught it before any request did.
				f.markDead(s)
			}
			nw, err := f.factory(s)
			if err != nil {
				slog.Warn("fleet: shard respawn failed", "shard", s, "error", err)
				continue
			}
			f.mu.Lock()
			old := f.workers[s]
			f.workers[s] = nw
			f.dead[s] = false
			f.mu.Unlock()
			f.counters[s].respawns.Add(1)
			slog.Info("fleet: shard respawned", "shard", s)
			if old != nil {
				// Drain the evicted worker off the probe loop; its
				// in-flight requests (if the process is merely wedged, not
				// gone) get their graceful window.
				go func() { _ = old.Close() }()
			}
		}
	}
}

// autoscale widens/narrows each shard's per-model replica pool from the
// shard's queue-pressure EWMA (serve.Batcher.Pressure, scraped via
// ShardStats): one step per tick, bounded by [1, MaxReplicas]. One step
// — not proportional jumps — keeps the controller stable against the
// pressure filter's own lag.
func (f *Fleet) autoscale() {
	defer f.loops.Done()
	ticker := time.NewTicker(f.cfg.AutoscaleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
		}
		for s := 0; s < f.cfg.Shards; s++ {
			w := f.Worker(s)
			if w == nil {
				continue
			}
			st, err := w.Stats()
			if err != nil {
				continue
			}
			for model, ms := range st.Models {
				switch {
				case ms.Pressure > f.cfg.GrowPressure && ms.PoolSize < ms.PoolMax:
					_, _ = w.Resize(model, ms.PoolSize+1)
				case ms.Pressure < f.cfg.ShrinkPressure && ms.PoolSize > 1:
					_, _ = w.Resize(model, ms.PoolSize-1)
				}
			}
		}
	}
}

// Close stops the supervisor and autoscaler, then closes every worker
// (draining their queues). Idempotent.
func (f *Fleet) Close() error {
	var errs []error
	f.stopOnce.Do(func() {
		close(f.stop)
		f.loops.Wait()
		f.mu.Lock()
		workers := append([]Worker(nil), f.workers...)
		f.mu.Unlock()
		for s, w := range workers {
			if w == nil {
				continue
			}
			if err := w.Close(); err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", s, err))
			}
		}
	})
	return errors.Join(errs...)
}
