package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"burstsnn/internal/serve"
)

// ErrWorkerDown marks a shard whose worker cannot take requests at all —
// a crashed process, a refused connection, a killed in-process worker.
// The front tier treats it unlike an overload shed: the shard is marked
// dead (the supervisor respawns it) and routing moves on WITHOUT
// consuming a fallback hop, so a dead shard never eats a live shard's
// availability budget.
var ErrWorkerDown = errors.New("fleet: worker down")

// Worker is one shard's serving backend. The two implementations —
// InprocWorker (a serve.Server in this process) and ProcWorker (an
// `snnserve -worker` child process spoken to over HTTP) — satisfy the
// same contract, so the front tier, supervisor, and autoscaler never
// care where a shard runs.
type Worker interface {
	// Classify serves one request. Overload sheds surface as
	// serve.ErrOverloaded (the front tier may fall back to the next
	// shard); a dead backend surfaces as ErrWorkerDown.
	Classify(ctx context.Context, req serve.ClassifyRequest) (serve.ClassifyResult, error)
	// Stats scrapes the shard's mergeable telemetry (see serve.ShardStats).
	Stats() (serve.ShardStats, error)
	// Models lists the shard's registered models.
	Models() ([]serve.Info, error)
	// RetryAfter is the shard's own drain-time projection for the model —
	// what a 429 on this shard's behalf must carry.
	RetryAfter(model string) time.Duration
	// Resize retargets the model's replica pool (see serve.Pool.Resize).
	Resize(model string, replicas int) (int, error)
	// Unregister removes a model from the shard: with evict=true the
	// shard archives the conversion and warms the model back in on the
	// next request (see serve.Server.Evict); with evict=false the name is
	// gone for good. Queued work drains either way.
	Unregister(model string, evict bool) error
	// Healthy reports whether the backend is serving (the supervisor's
	// eviction signal).
	Healthy() bool
	// Close shuts the backend down, draining in-flight work.
	Close() error
}

// InprocWorker runs a shard as a serve.Server inside this process — the
// zero-IPC fleet mode (goroutine pools behind the same Worker interface
// the process workers implement).
type InprocWorker struct {
	srv    *serve.Server
	killed atomic.Bool
}

// NewInprocWorker wraps an already-configured server (models registered).
func NewInprocWorker(srv *serve.Server) *InprocWorker {
	return &InprocWorker{srv: srv}
}

// Server exposes the wrapped server (tests reach through it to inspect
// per-shard cache state).
func (w *InprocWorker) Server() *serve.Server { return w.srv }

// Kill simulates a worker crash: the worker stops answering (every
// Classify fails ErrWorkerDown, Healthy goes false) without draining —
// exactly what the supervisor must detect and repair. Test hook.
func (w *InprocWorker) Kill() { w.killed.Store(true) }

func (w *InprocWorker) Classify(ctx context.Context, req serve.ClassifyRequest) (serve.ClassifyResult, error) {
	if w.killed.Load() {
		return serve.ClassifyResult{}, ErrWorkerDown
	}
	res, err := w.srv.Classify(ctx, req)
	if err != nil && errors.Is(err, serve.ErrClosed) {
		return serve.ClassifyResult{}, fmt.Errorf("%w: %v", ErrWorkerDown, err)
	}
	return res, err
}

func (w *InprocWorker) Stats() (serve.ShardStats, error) {
	if w.killed.Load() {
		return serve.ShardStats{}, ErrWorkerDown
	}
	return w.srv.ShardStats(), nil
}

func (w *InprocWorker) Models() ([]serve.Info, error) {
	if w.killed.Load() {
		return nil, ErrWorkerDown
	}
	return w.srv.Registry().ListAll(), nil
}

func (w *InprocWorker) Unregister(model string, evict bool) error {
	if w.killed.Load() {
		return ErrWorkerDown
	}
	if evict {
		return w.srv.Evict(model)
	}
	return w.srv.Unregister(model)
}

func (w *InprocWorker) RetryAfter(model string) time.Duration {
	return w.srv.RetryAfter(model)
}

func (w *InprocWorker) Resize(model string, replicas int) (int, error) {
	if w.killed.Load() {
		return 0, ErrWorkerDown
	}
	return w.srv.ResizePool(model, replicas)
}

func (w *InprocWorker) Healthy() bool { return !w.killed.Load() }

func (w *InprocWorker) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return w.srv.Shutdown(ctx)
}
