module burstsnn

go 1.24
