// Benchmarks that regenerate every table and figure of the paper (one
// Benchmark per exhibit; see DESIGN.md §4 for the index) plus
// micro-benchmarks of the simulator hot paths and ablations of the design
// choices DESIGN.md calls out (burst constant β, normalization method).
//
// The macro benchmarks print their reproduced table/figure once (via
// b.Logf, visible with -v or on failure) and report the headline numbers
// as custom metrics. Trained baseline models are cached in the system
// temp directory, so the first run pays the training cost and later runs
// reuse it.
package burstsnn_test

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"burstsnn"
	"burstsnn/internal/benchkit"
	"burstsnn/internal/coding"
	"burstsnn/internal/experiments"
	"burstsnn/internal/kernels"
	"burstsnn/internal/serve"
	"burstsnn/internal/snn"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

// lab returns the shared benchmark Lab. Workloads follow DESIGN.md's
// scaled-down defaults; raise them by editing Settings or via snnbench
// flags for a longer-running reproduction.
func lab() *experiments.Lab {
	benchLabOnce.Do(func() {
		s := experiments.DefaultSettings()
		s.Log = os.Stderr
		benchLab = experiments.NewLab(s)
	})
	return benchLab
}

// BenchmarkFig1ISIH regenerates Fig. 1: spike train, PSP staircase, and
// ISI histogram of one IF neuron under rate, phase, and burst coding.
func BenchmarkFig1ISIH(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		res := experiments.Fig1(0.7, 256)
		out = res.Render()
		// Headline metric: spikes each coding needs for the same drive.
		for _, tr := range res.Traces {
			b.ReportMetric(float64(len(tr.Spikes)), tr.Scheme+"-spikes")
		}
	}
	b.Logf("\n%s", out)
}

// BenchmarkFig2BurstComposition regenerates Fig. 2: burst share and
// length composition across the v_th sweep.
func BenchmarkFig2BurstComposition(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(l)
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Points[0], res.Points[len(res.Points)-1]
		b.ReportMetric(first.PercentBurst*100, "burst%@vth=0.5")
		b.ReportMetric(last.PercentBurst*100, "burst%@vth=0.03125")
		if i == 0 {
			b.Logf("\n%s", res.Render())
		}
	}
}

// BenchmarkTable1Grid regenerates Table 1: the 9-combination coding grid
// on the CIFAR-10 stand-in.
func BenchmarkTable1Grid(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(l)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Input == "phase" && row.Hidden == "burst" {
				b.ReportMetric(row.Accuracy*100, "phase-burst-acc%")
				b.ReportMetric(row.Spikes, "phase-burst-spikes")
			}
			if row.Input == "phase" && row.Hidden == "phase" {
				b.ReportMetric(row.Spikes, "phase-phase-spikes")
			}
		}
		if i == 0 {
			b.Logf("\n%s", res.Render())
		}
	}
}

// BenchmarkFig3TargetLatency regenerates Fig. 3: latency and spikes to
// reach the three target accuracies.
func BenchmarkFig3TargetLatency(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(l)
		if err != nil {
			b.Fatal(err)
		}
		for _, cell := range res.Targets[0].Cells {
			if cell.Combo == "real-burst" && cell.Latency > 0 {
				b.ReportMetric(float64(cell.Latency), "real-burst-latency")
			}
		}
		if i == 0 {
			b.Logf("\n%s", res.Render())
		}
	}
}

// BenchmarkFig4InferenceCurve regenerates Fig. 4: accuracy-vs-step curves
// for all nine coding combinations.
func BenchmarkFig4InferenceCurve(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(l)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Curves {
			if c.Combo == "phase-burst" {
				b.ReportMetric(c.AccuracyAt[len(c.AccuracyAt)-1]*100, "phase-burst-final%")
			}
		}
		if i == 0 {
			b.Logf("\n%s", res.Render())
		}
	}
}

// BenchmarkTable2Comparison regenerates Table 2: the cross-method
// comparison on all three datasets with density and normalized energy.
func BenchmarkTable2Comparison(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(l)
		if err != nil {
			b.Fatal(err)
		}
		for _, sec := range res.Sections {
			for _, row := range sec.Rows {
				if row.Hidden == "burst" {
					b.ReportMetric(row.EnergyTN, sec.Dataset+"-burst-E(TN)")
				}
			}
		}
		if i == 0 {
			b.Logf("\n%s", res.Render())
		}
	}
}

// BenchmarkFig5FiringPattern regenerates Fig. 5: the firing-rate /
// regularity scatter and the per-hidden-scheme flexibility spread.
func BenchmarkFig5FiringPattern(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(l)
		if err != nil {
			b.Fatal(err)
		}
		spread := res.HiddenSpread()
		b.ReportMetric(spread["burst"], "burst-rate-spread")
		b.ReportMetric(spread["phase"], "phase-rate-spread")
		if i == 0 {
			b.Logf("\n%s", res.Render())
		}
	}
}

// BenchmarkChipMapping regenerates the topology-grounded energy study:
// Table 2's energy columns measured on placed TrueNorth/SpiNNaker meshes
// (hop counts, congestion) plus the placement-quality comparison.
func BenchmarkChipMapping(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ChipEnergy(l)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Chip == "TrueNorth" && row.Method == "real-burst (ours)" {
				b.ReportMetric(row.NormLast, "burst-E(TN)-norm")
				b.ReportMetric(row.OffCore, "burst-offcore")
			}
		}
		if i == 0 {
			b.Logf("\n%s", res.Render())
		}
	}
}

// --- Micro-benchmarks of the simulator hot paths ---

// benchEvalModel builds a small trained model once for the micro-benches.
var (
	microOnce sync.Once
	microNet  *burstsnn.DNN
	microSet  *burstsnn.Set
)

func microModel(b *testing.B) (*burstsnn.DNN, *burstsnn.Set) {
	microOnce.Do(func() {
		cfg := burstsnn.DefaultTexturesConfig()
		cfg.TrainPerClass, cfg.TestPerClass = 40, 8
		microSet = burstsnn.SynthTextures(cfg)
		var err error
		microNet, err = burstsnn.BuildDNN(burstsnn.LeNetMini(3, 16, 16, 10), burstsnn.NewRNG(1))
		if err != nil {
			panic(err)
		}
		burstsnn.Train(microNet, microSet, burstsnn.NewAdam(0.005), burstsnn.TrainConfig{
			Epochs: 3, BatchSize: 32, Seed: 2,
		})
	})
	return microNet, microSet
}

// BenchmarkSNNStep measures event-driven simulation throughput per coding
// configuration (steps/op on one image), on both the optimized path and
// the retained reference path — the ratio is the hot-path speedup on the
// conv-bearing LeNetMini model.
func BenchmarkSNNStep(b *testing.B) {
	net, set := microModel(b)
	for _, hidden := range []burstsnn.Scheme{burstsnn.Rate, burstsnn.Phase, burstsnn.Burst} {
		for _, path := range []string{"fast", "ref"} {
			b.Run("phase-"+hidden.String()+"/"+path, func(b *testing.B) {
				conv, err := burstsnn.Convert(net, set.Train, burstsnn.DefaultConvertOptions(burstsnn.Phase, hidden))
				if err != nil {
					b.Fatal(err)
				}
				conv.Net.Ref = path == "ref"
				img := set.Test[0].Image
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					conv.Net.Run(img, 64)
				}
			})
		}
	}
}

// --- Hot-path per-layer micro-benchmarks (fast vs reference path) ---
//
// Workloads come from internal/benchkit so `go test -bench Hotpath` and
// the `snnbench -hotpath` artifact always measure the same thing.

// BenchmarkHotpathConvStep isolates SpikingConv.Step: table-driven
// scatter + fused bias/fire versus per-event div/mod arithmetic with a
// full-population bias sweep.
func BenchmarkHotpathConvStep(b *testing.B) {
	layer, in := benchkit.HotpathConv()
	for _, path := range []string{"fast", "ref"} {
		b.Run(path, func(b *testing.B) {
			layer.Reset()
			step := layer.Step
			if path == "ref" {
				step = layer.StepSlow
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step(i, 1, in)
			}
		})
	}
}

// BenchmarkHotpathDenseStep isolates SpikingDense.Step: direct membrane
// accumulation with fused bias versus the three-pass z-buffer version.
func BenchmarkHotpathDenseStep(b *testing.B) {
	layer, evs := benchkit.HotpathDense()
	for _, path := range []string{"fast", "ref"} {
		b.Run(path, func(b *testing.B) {
			layer.Reset()
			step := layer.Step
			if path == "ref" {
				step = layer.StepSlow
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step(i, 1, evs)
			}
		})
	}
}

// BenchmarkHotpathPoolStep isolates the pooling stages (precomputed
// window tables versus per-event div/mod).
func BenchmarkHotpathPoolStep(b *testing.B) {
	avg, maxp, in := benchkit.HotpathPools()
	type stepFn func(t int, biasScale float64, in []coding.Event) []coding.Event
	cases := []struct {
		name string
		step stepFn
	}{
		{"avg/fast", avg.Step}, {"avg/ref", avg.StepSlow},
		{"max/fast", maxp.Step}, {"max/ref", maxp.StepSlow},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.step(i, 0, in)
			}
		})
	}
}

// BenchmarkHotpathClassify measures the early-exit engine directly on a
// pooled replica (no batching queue), asserting the zero-allocation
// steady state via allocs/op.
func BenchmarkHotpathClassify(b *testing.B) {
	net, set := microModel(b)
	conv, err := burstsnn.Convert(net, set.Train, burstsnn.DefaultConvertOptions(burstsnn.Phase, burstsnn.Burst))
	if err != nil {
		b.Fatal(err)
	}
	policy := serve.DefaultExitPolicy(96)
	img := set.Test[0].Image
	serve.Classify(conv.Net, img, policy) // reach buffer high-watermark
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serve.Classify(conv.Net, img, policy)
	}
}

// BenchmarkHotpathBatchStep isolates the batched per-layer scatter+fire
// on the canonical benchkit column streams (B = 8 lanes per step): the
// per-layer counterpart of the Hotpath*Step benchmarks, with lane-events
// per op reported so the per-spike cost is comparable across B.
func BenchmarkHotpathBatchStep(b *testing.B) {
	const B = benchkit.HotpathBatchB
	conv, convIn := benchkit.HotpathConvBatch(B)
	dense, denseIn := benchkit.HotpathDenseBatch(B)
	cases := []struct {
		name  string
		layer snn.BatchLayer
		in    *coding.BatchEvents
	}{
		{"conv", conv, convIn},
		{"dense", dense, denseIn},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			c.layer.Reset()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.layer.Step(i, 1, B, c.in)
			}
			b.ReportMetric(float64(c.in.LaneEvents()), "laneEvents/op")
		})
	}
}

// BenchmarkBatchedThroughput measures the lockstep batch simulators
// against back-to-back sequential classification on the conv-bearing
// micro model: the same 8 images, the same early-exit policy, one
// replica. Per-lane results agree across all paths (bit-identical for
// the float64 plane, the tolerance contract for the float32 kernels —
// the equivalence suites pin both), so the images/sec ratio is pure
// amortization: shared scatter-table walks, weight-row loads, and
// threshold computation across the batch, plus SIMD lane packing on the
// float32 plane.
func BenchmarkBatchedThroughput(b *testing.B) {
	net, set := microModel(b)
	conv, err := burstsnn.Convert(net, set.Train, burstsnn.DefaultConvertOptions(burstsnn.Phase, burstsnn.Burst))
	if err != nil {
		b.Fatal(err)
	}
	const B = 8
	images := make([][]float64, B)
	for i := range images {
		images[i] = set.Test[i%len(set.Test)].Image
	}
	policies := make([]serve.ExitPolicy, B)
	for i := range policies {
		policies[i] = serve.DefaultExitPolicy(96)
	}
	b.Run("sequential", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, img := range images {
				serve.Classify(conv.Net, img, policies[0])
			}
		}
		b.ReportMetric(float64(B*b.N)/b.Elapsed().Seconds(), "images/sec")
	})
	// The float64 plane, then the float32 plane once per available kernel
	// dispatch tier (forced for the sub-benchmark's duration) — one
	// process, so tier-vs-tier ratios are not polluted by run-to-run
	// machine noise. These sub-benchmarks are the LockstepBatch flip
	// evidence: the default goes on only where lockstep beats sequential.
	bn64, err := snn.NewLockstep(conv.Net, B, false)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("lockstep-"+bn64.Kernel(), func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serve.ClassifyBatch(bn64, images, policies)
		}
		b.ReportMetric(float64(B*b.N)/b.Elapsed().Seconds(), "images/sec")
	})
	defer kernels.ForceLevel("")
	for _, lv := range kernels.Available() {
		if err := kernels.ForceLevel(lv); err != nil {
			b.Fatal(err)
		}
		bn32, err := snn.NewLockstep(conv.Net, B, true)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("lockstep-"+bn32.Kernel(), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				serve.ClassifyBatch(bn32, images, policies)
			}
			b.ReportMetric(float64(B*b.N)/b.Elapsed().Seconds(), "images/sec")
		})
	}
}

// BenchmarkAsyncDelivery measures the asynchronous execution mode
// against the synchronous simulator on the same converted network.
func BenchmarkAsyncDelivery(b *testing.B) {
	net, set := microModel(b)
	conv, err := burstsnn.Convert(net, set.Train, burstsnn.DefaultConvertOptions(burstsnn.Real, burstsnn.Burst))
	if err != nil {
		b.Fatal(err)
	}
	async, err := burstsnn.WithDelays(conv.Net, 2, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	img := set.Test[0].Image
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		async.Run(img, 64)
	}
}

// BenchmarkDNNForward measures the analog forward pass for comparison
// with the event-driven path.
func BenchmarkDNNForward(b *testing.B) {
	net, set := microModel(b)
	img := set.Test[0].Image
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		burstsnn.EvaluateDNN(net, []burstsnn.Sample{{Image: img, Label: 0}})
	}
}

// BenchmarkServingThroughput measures the end-to-end serving path —
// microbatching queue, replica pool checkout, early-exit engine — as
// in-process classifications per second on the micro model.
func BenchmarkServingThroughput(b *testing.B) {
	net, set := microModel(b)
	srv := burstsnn.NewServer(burstsnn.ServeConfig{
		MaxBatch: 8,
		MaxDelay: time.Millisecond,
	})
	model, err := srv.Register(burstsnn.ServeModelConfig{
		Name:   "micro",
		Hybrid: burstsnn.NewHybrid(burstsnn.Phase, burstsnn.Burst),
		Steps:  96,
	}, net, set.Train)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s := set.Test[i%len(set.Test)]
			if _, err := srv.Classify(ctx, burstsnn.ClassifyRequest{Model: "micro", Image: s.Image}); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	snap := model.Metrics().Snapshot()
	b.ReportMetric(snap.MeanSteps, "steps/req")
	b.ReportMetric(snap.MeanSpikes, "spikes/req")
	b.ReportMetric(snap.EarlyExitRate*100, "early-exit%")
}

// --- Ablations (design choices called out in DESIGN.md §5) ---

// BenchmarkAblationBeta sweeps the burst constant β: larger β drains
// membranes in fewer spikes but with coarser payload granularity.
func BenchmarkAblationBeta(b *testing.B) {
	net, set := microModel(b)
	for _, beta := range []float64{1.5, 2, 4} {
		b.Run(fmt.Sprintf("beta=%.1f", beta), func(b *testing.B) {
			var spikes, acc float64
			for i := 0; i < b.N; i++ {
				res, err := burstsnn.Evaluate(net, set, burstsnn.EvalConfig{
					Hybrid: burstsnn.NewHybrid(burstsnn.Phase, burstsnn.Burst).WithBeta(beta),
					Steps:  64, MaxImages: 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				best, _ := res.BestAccuracy()
				spikes, acc = res.SpikesPerImage, best
			}
			b.ReportMetric(spikes, "spikes/image")
			b.ReportMetric(acc*100, "best-acc%")
		})
	}
}

// BenchmarkAblationNorm compares max-based (Diehl'15) and percentile
// (Rueckauer'17) weight normalization.
func BenchmarkAblationNorm(b *testing.B) {
	net, set := microModel(b)
	methods := []struct {
		name string
		norm burstsnn.ConvertOptions
	}{
		{"max", func() burstsnn.ConvertOptions {
			o := burstsnn.DefaultConvertOptions(burstsnn.Real, burstsnn.Rate)
			o.Norm = burstsnn.MaxNorm
			return o
		}()},
		{"p99.9", burstsnn.DefaultConvertOptions(burstsnn.Real, burstsnn.Rate)},
	}
	for _, m := range methods {
		b.Run(m.name, func(b *testing.B) {
			var correct float64
			for i := 0; i < b.N; i++ {
				conv, err := burstsnn.Convert(net, set.Train, m.norm)
				if err != nil {
					b.Fatal(err)
				}
				hits := 0
				for _, s := range set.Test[:20] {
					if conv.Net.Run(s.Image, 64).FinalPrediction() == s.Label {
						hits++
					}
				}
				correct = float64(hits) / 20
			}
			b.ReportMetric(correct*100, "acc%")
		})
	}
}
